//! The durability layer behind [`Database::open_at`](crate::Database::open_at):
//! write-ahead logging, checkpointing, and recovery.
//!
//! Durability lives *above* the engine seam on purpose. The engines run
//! against the simulated disk (whose bytes model cost and cannot survive
//! a restart), and every engine loads from the same logical
//! [`Dataset`] — so one engine-agnostic on-disk format (the dictionary +
//! the triple multiset) makes a durable directory reopenable under any
//! engine × layout configuration, including third-party engines.
//!
//! ## Commit protocol
//!
//! Every mutation batch becomes one WAL record *before* it touches the
//! engine or the dataset:
//!
//! 1. encode the batch: the dictionary terms it introduced (everything
//!    past the durable watermark) followed by the [`Delta`] image;
//! 2. append it to the checksummed WAL ([`swans_storage::wal`]) — under
//!    the default [`DurabilityOptions`] the record is read back,
//!    verified and fsynced before the append returns;
//! 3. only then apply the batch in memory and acknowledge the caller.
//!
//! A batch whose append errored was **not** acknowledged: recovery is
//! free to keep it (the record may have reached disk) or drop it (it may
//! not have) — but never to half-apply it, because replay applies whole
//! records only.
//!
//! ## The dictionary watermark
//!
//! Term interning happens before the WAL append (encoding the delta
//! requires ids), so a *failed* batch can leave terms in the in-memory
//! dictionary that no durable record mentions. Logging "terms new since
//! the last *successful* append" (the `durable_dict_len` watermark)
//! instead of "terms this batch interned" makes the next successful
//! record carry those orphans too, keeping replayed dictionaries dense
//! and id-aligned with the live one.
//!
//! ## Checkpoints
//!
//! [`Durable::checkpoint`] snapshots the full dataset (RLE-compressed,
//! via [`swans_storage::snapshot`]'s temp-file + verify + atomic-rename
//! protocol) and then truncates the WAL. A crash between those two steps
//! is benign: recovery skips WAL records whose sequence number the
//! snapshot already covers.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use swans_rdf::{Dataset, Delta, Dictionary};
use swans_storage::fault::FaultState;
use swans_storage::snapshot::{read_snapshot, write_snapshot, SnapshotData};
use swans_storage::wal::{WalOptions, WalTail, WalWriter, WAL_FILE};
use swans_storage::AtomicIoStats;

use crate::error::Error;

/// Policy knobs for a durable database.
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// Fsync every WAL append before acknowledging it (default `true`).
    /// Off, a crash may lose a *suffix* of acknowledged batches — it
    /// still never tears one.
    pub sync_on_commit: bool,
    /// Read back and verify every WAL append before acknowledging it
    /// (default `true`): silent write corruption is caught while the
    /// record can still be rolled back.
    pub verify_appends: bool,
    /// Checkpoint automatically once this many operations (delta
    /// inserts plus deletes) have been logged since the last checkpoint. `None`
    /// (default): checkpoint only on [`Database::merge`] /
    /// [`Database::checkpoint`] and engine-initiated merges.
    ///
    /// [`Database::merge`]: crate::Database::merge
    /// [`Database::checkpoint`]: crate::Database::checkpoint
    pub checkpoint_ops: Option<usize>,
    /// Fault-injection state shared with the test harness. `None`
    /// (default) runs fault-free.
    pub faults: Option<Arc<FaultState>>,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        Self {
            sync_on_commit: true,
            verify_appends: true,
            checkpoint_ops: None,
            faults: None,
        }
    }
}

/// What [`Durable::open`] found on disk and did about it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Triples restored from the snapshot (0 when none was published).
    pub snapshot_triples: u64,
    /// Encoded size of the snapshot that was loaded, in bytes.
    pub snapshot_bytes: u64,
    /// WAL batches replayed on top of the snapshot.
    pub replayed_batches: u64,
    /// Total operations (inserts + deletes) those batches carried.
    pub replayed_ops: u64,
    /// Whether the WAL ended in a torn/corrupt record that recovery
    /// truncated (the clean-end-of-log case, not an error).
    pub wal_tail_torn: bool,
    /// Valid WAL bytes found on disk (before any truncation of the tail).
    pub wal_bytes: u64,
}

/// Serializes one commit: the dictionary terms introduced since the
/// durable watermark, then the delta image.
fn encode_batch(dict: &Dictionary, from: usize, delta: &Delta) -> Vec<u8> {
    let new_terms: Vec<&str> = dict.iter().skip(from).map(|(_, term)| term).collect();
    let mut out = Vec::new();
    out.extend_from_slice(&(new_terms.len() as u32).to_le_bytes());
    for term in new_terms {
        out.extend_from_slice(&(term.len() as u32).to_le_bytes());
        out.extend_from_slice(term.as_bytes());
    }
    out.extend_from_slice(&delta.to_bytes());
    out
}

/// Decodes a batch payload back into its new terms and delta. Total:
/// corrupt payloads (only reachable if something behind the WAL checksum
/// went wrong) are typed errors, never panics.
fn decode_batch(bytes: &[u8]) -> Result<(Vec<String>, Delta), String> {
    if bytes.len() < 4 {
        return Err("batch truncated before term count".into());
    }
    let n_terms = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    let mut at = 4usize;
    let mut terms = Vec::new();
    for i in 0..n_terms {
        if bytes.len() - at < 4 {
            return Err(format!("batch truncated at term {i}"));
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        at += 4;
        if bytes.len() - at < len {
            return Err(format!("batch truncated inside term {i}"));
        }
        let term = std::str::from_utf8(&bytes[at..at + len])
            .map_err(|_| format!("term {i} is not UTF-8"))?;
        terms.push(term.to_string());
        at += len;
    }
    let delta = Delta::from_bytes(&bytes[at..]).map_err(|e| e.to_string())?;
    Ok((terms, delta))
}

/// The durable state of one [`Database`](crate::Database): its directory,
/// the WAL writer, and the bookkeeping that decides what the next record
/// and the next checkpoint must contain.
pub struct Durable {
    dir: PathBuf,
    wal: WalWriter,
    faults: Arc<FaultState>,
    stats: Option<Arc<AtomicIoStats>>,
    checkpoint_ops: Option<usize>,
    /// Dictionary length covered by durable state (snapshot + acked WAL
    /// records): the next record logs terms from here up.
    durable_dict_len: usize,
    /// Operations logged since the last checkpoint.
    ops_since_checkpoint: usize,
    /// Engine merge count at the last checkpoint, so the front door can
    /// detect threshold-triggered merges and re-checkpoint.
    pub(crate) engine_merges: u64,
    last_snapshot_bytes: u64,
    report: RecoveryReport,
}

impl std::fmt::Debug for Durable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Durable")
            .field("dir", &self.dir)
            .field("next_seq", &self.wal.next_seq())
            .field("wal_bytes", &self.wal.len_bytes())
            .field("durable_dict_len", &self.durable_dict_len)
            .finish_non_exhaustive()
    }
}

impl Durable {
    /// Opens (or initializes) the durable directory at `dir` and returns
    /// the recovered dataset: last valid snapshot + replayed WAL tail. A
    /// torn or checksum-failing tail record ends replay cleanly; it is
    /// truncated and noted in the [`RecoveryReport`], never an error.
    pub fn open(dir: &Path, options: DurabilityOptions) -> Result<(Dataset, Durable), Error> {
        std::fs::create_dir_all(dir)?;
        let faults = options.faults.unwrap_or_default();

        let mut report = RecoveryReport::default();
        let mut dataset = Dataset::new();
        let mut base_seq = 0;
        if let Some((snap, bytes)) = read_snapshot(dir).map_err(|e| Error::Io(e.to_string()))? {
            report.snapshot_triples = snap.n_triples;
            report.snapshot_bytes = bytes;
            base_seq = snap.last_seq;
            for term in &snap.terms {
                dataset.dict.intern(term);
            }
            for [s, p, o] in snap.rows() {
                dataset.add_encoded(swans_rdf::Triple::new(s, p, o));
            }
        }

        let wal_opts = WalOptions {
            sync_on_commit: options.sync_on_commit,
            verify_appends: options.verify_appends,
        };
        let (records, tail, wal) =
            WalWriter::recover(&dir.join(WAL_FILE), faults.clone(), wal_opts, base_seq)?;
        report.wal_tail_torn = !tail.is_clean();
        if let WalTail::Torn { valid_bytes, .. } = tail {
            report.wal_bytes = valid_bytes;
        } else {
            report.wal_bytes = wal.len_bytes();
        }
        for record in records {
            if record.seq <= base_seq {
                continue; // the snapshot already contains this batch
            }
            let (terms, delta) = decode_batch(&record.payload).map_err(|m| {
                Error::Io(format!(
                    "WAL record {} is not a valid batch: {m}",
                    record.seq
                ))
            })?;
            for term in &terms {
                dataset.dict.intern(term);
            }
            dataset.apply(&delta);
            report.replayed_batches += 1;
            report.replayed_ops += delta.len() as u64;
        }

        let durable = Durable {
            dir: dir.to_path_buf(),
            wal,
            faults,
            stats: None,
            checkpoint_ops: options.checkpoint_ops,
            durable_dict_len: dataset.dict.len(),
            ops_since_checkpoint: report.replayed_ops as usize,
            engine_merges: 0,
            last_snapshot_bytes: report.snapshot_bytes,
            report,
        };
        Ok((dataset, durable))
    }

    /// Attaches the store's accounting sink so durable fsyncs land in the
    /// same [`IoStats`](swans_storage::IoStats) window as the simulated
    /// traffic.
    pub(crate) fn set_stats(&mut self, stats: Arc<AtomicIoStats>) {
        self.wal.set_stats(stats.clone());
        self.stats = Some(stats);
    }

    /// The durable directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// How the last [`Durable::open`] recovered.
    pub fn report(&self) -> &RecoveryReport {
        &self.report
    }

    /// Current WAL length in bytes.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.len_bytes()
    }

    /// Encoded size of the most recent snapshot (0 if none exists yet).
    pub fn snapshot_bytes(&self) -> u64 {
        self.last_snapshot_bytes
    }

    /// Logs one batch ahead of its in-memory application. `dict` is the
    /// live dictionary *after* the batch's terms were interned; every
    /// term past the durable watermark rides along in the record. On
    /// `Ok`, the batch is acknowledged and the watermark advances.
    pub fn append_batch(&mut self, dict: &Dictionary, delta: &Delta) -> Result<u64, Error> {
        let payload = encode_batch(dict, self.durable_dict_len, delta);
        let seq = self
            .wal
            .append(&payload)
            .map_err(|e| Error::Io(format!("WAL append failed: {e}")))?;
        self.durable_dict_len = dict.len();
        self.ops_since_checkpoint += delta.len();
        Ok(seq)
    }

    /// True once enough operations accumulated that the configured
    /// auto-checkpoint policy asks for one.
    pub fn wants_checkpoint(&self) -> bool {
        self.checkpoint_ops
            .is_some_and(|n| self.ops_since_checkpoint >= n)
    }

    /// Snapshots `dataset` (which must reflect every acknowledged batch)
    /// and truncates the WAL. Returns the snapshot's size in bytes. On
    /// error the previous snapshot and the full WAL are intact — nothing
    /// durable was given up.
    pub fn checkpoint(&mut self, dataset: &Dataset) -> Result<u64, Error> {
        let last_seq = self.wal.next_seq() - 1;
        let terms: Vec<String> = dataset.dict.iter().map(|(_, t)| t.to_string()).collect();
        let mut rows: Vec<[u64; 3]> = dataset.triples.iter().map(|t| t.as_row()).collect();
        rows.sort_unstable();
        let snap = SnapshotData::from_rows(last_seq, terms, &rows);
        let bytes = write_snapshot(&self.dir, &snap, &self.faults, self.stats.clone())
            .map_err(|e| Error::Io(format!("checkpoint failed: {e}")))?;
        // The snapshot is live. Truncating the now-redundant WAL may still
        // fail (or crash); recovery handles that by skipping records the
        // snapshot covers, so an error here loses no data either way.
        self.wal
            .truncate()
            .map_err(|e| Error::Io(format!("WAL truncate after checkpoint failed: {e}")))?;
        self.durable_dict_len = dataset.dict.len();
        self.ops_since_checkpoint = 0;
        self.last_snapshot_bytes = bytes;
        Ok(bytes)
    }

    /// Initializes a fresh durable directory from an existing dataset: an
    /// immediate checkpoint, so the import is durable before the database
    /// opens. Fails if `dir` already holds a durable database.
    pub fn create_from(
        dir: &Path,
        dataset: &Dataset,
        options: DurabilityOptions,
    ) -> Result<Durable, Error> {
        std::fs::create_dir_all(dir)?;
        if dir.join(swans_storage::SNAPSHOT_FILE).exists() || dir.join(WAL_FILE).exists() {
            return Err(Error::Io(format!(
                "refusing to import over an existing durable database at {}",
                dir.display()
            )));
        }
        let faults = options.faults.unwrap_or_default();
        let wal_opts = WalOptions {
            sync_on_commit: options.sync_on_commit,
            verify_appends: options.verify_appends,
        };
        let (_, _, wal) = WalWriter::recover(&dir.join(WAL_FILE), faults.clone(), wal_opts, 0)?;
        let mut durable = Durable {
            dir: dir.to_path_buf(),
            wal,
            faults,
            stats: None,
            checkpoint_ops: options.checkpoint_ops,
            durable_dict_len: 0,
            ops_since_checkpoint: 0,
            engine_merges: 0,
            last_snapshot_bytes: 0,
            report: RecoveryReport::default(),
        };
        durable.checkpoint(dataset)?;
        Ok(durable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use swans_rdf::Triple;

    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "swans-durable-{}-{}-{}",
            tag,
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn batch_codec_round_trips() {
        let mut dict = Dictionary::new();
        dict.intern("<old>");
        let watermark = dict.len();
        dict.intern("<s>");
        dict.intern("<p>");
        let mut delta = Delta::new();
        delta
            .insert(Triple::new(1, 2, 0))
            .delete(Triple::new(0, 0, 0));
        let payload = encode_batch(&dict, watermark, &delta);
        let (terms, back) = decode_batch(&payload).expect("round trip");
        assert_eq!(terms, vec!["<s>".to_string(), "<p>".to_string()]);
        assert_eq!(back, delta);
    }

    #[test]
    fn batch_codec_rejects_any_truncation() {
        let mut dict = Dictionary::new();
        dict.intern("<s>");
        let mut delta = Delta::new();
        delta.insert(Triple::new(0, 0, 0));
        let payload = encode_batch(&dict, 0, &delta);
        for cut in 0..payload.len() {
            assert!(decode_batch(&payload[..cut]).is_err(), "cut at {cut}");
        }
        let mut long = payload;
        long.push(7);
        assert!(decode_batch(&long).is_err(), "trailing byte accepted");
    }

    #[test]
    #[cfg_attr(miri, ignore)] // real file I/O
    fn open_append_reopen_replays_acknowledged_batches() {
        let dir = scratch("replay");
        let opts = DurabilityOptions::default();
        {
            let (mut ds, mut durable) = Durable::open(&dir, opts.clone()).expect("fresh open");
            assert!(ds.is_empty());
            let t = ds.encode("<s1>", "<p>", "<o1>");
            let delta = Delta::of_inserts(vec![t]);
            durable.append_batch(&ds.dict, &delta).expect("acked");
            ds.apply(&delta);
            let t2 = ds.encode("<s2>", "<p>", "<o2>");
            let delta2 = Delta::of_inserts(vec![t2]);
            durable.append_batch(&ds.dict, &delta2).expect("acked");
            ds.apply(&delta2);
        }
        let (ds, durable) = Durable::open(&dir, opts).expect("reopen");
        assert_eq!(durable.report().replayed_batches, 2);
        assert_eq!(durable.report().replayed_ops, 2);
        assert_eq!(durable.report().snapshot_triples, 0);
        assert_eq!(ds.len(), 2);
        assert!(ds.try_encode("<s1>", "<p>", "<o1>").is_some());
        assert!(ds.try_encode("<s2>", "<p>", "<o2>").is_some());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    #[cfg_attr(miri, ignore)]
    fn checkpoint_truncates_the_wal_and_survives_reopen() {
        let dir = scratch("checkpoint");
        let opts = DurabilityOptions::default();
        {
            let (mut ds, mut durable) = Durable::open(&dir, opts.clone()).expect("fresh open");
            let t = ds.encode("<s1>", "<p>", "<o1>");
            let delta = Delta::of_inserts(vec![t]);
            durable.append_batch(&ds.dict, &delta).expect("acked");
            ds.apply(&delta);
            assert!(durable.wal_bytes() > 0);
            let snap_bytes = durable.checkpoint(&ds).expect("checkpoints");
            assert!(snap_bytes > 0);
            assert_eq!(durable.wal_bytes(), 0, "checkpoint empties the WAL");
            // Post-checkpoint appends continue the sequence.
            let t2 = ds.encode("<s2>", "<p>", "<o2>");
            let delta2 = Delta::of_inserts(vec![t2]);
            assert_eq!(durable.append_batch(&ds.dict, &delta2).expect("acked"), 2);
            ds.apply(&delta2);
        }
        let (ds, durable) = Durable::open(&dir, opts).expect("reopen");
        assert_eq!(durable.report().snapshot_triples, 1);
        assert_eq!(
            durable.report().replayed_batches,
            1,
            "only the tail replays"
        );
        assert_eq!(ds.len(), 2);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    #[cfg_attr(miri, ignore)]
    fn orphaned_terms_of_failed_batches_replay_through_the_watermark() {
        use swans_storage::{FaultKind, FaultPolicy};
        let dir = scratch("watermark");
        let faults = FaultState::new();
        let opts = DurabilityOptions {
            faults: Some(faults.clone()),
            ..DurabilityOptions::default()
        };
        let (mut ds, mut durable) = Durable::open(&dir, opts).expect("fresh open");
        // Batch 1 interns terms, then its append is refused (injected
        // error — the process survives, the batch is unacknowledged).
        let t1 = ds.encode("<orphan-s>", "<p>", "<o>");
        faults.arm(FaultPolicy {
            at_op: faults.ops(),
            kind: FaultKind::Error,
        });
        assert!(durable
            .append_batch(&ds.dict, &Delta::of_inserts(vec![t1]))
            .is_err());
        faults.disarm();
        // Batch 2 succeeds; its record must carry the orphaned terms so
        // replay interning stays dense.
        let t2 = ds.encode("<s2>", "<p>", "<o2>");
        let delta2 = Delta::of_inserts(vec![t2]);
        durable.append_batch(&ds.dict, &delta2).expect("acked");
        ds.apply(&delta2);
        drop(durable);
        let (back, _) = Durable::open(&dir, DurabilityOptions::default()).expect("reopen");
        // The orphan terms exist with their original ids; the orphan
        // *triple* does not (its batch was never acknowledged).
        assert_eq!(back.dict.len(), ds.dict.len());
        assert_eq!(back.dict.id_of("<orphan-s>"), ds.dict.id_of("<orphan-s>"));
        assert_eq!(back.len(), 1);
        assert_eq!(back.try_encode("<s2>", "<p>", "<o2>"), Some(t2));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    #[cfg_attr(miri, ignore)]
    fn create_from_imports_and_refuses_to_overwrite() {
        let dir = scratch("import");
        let mut ds = Dataset::new();
        ds.add("<s>", "<p>", "<o>");
        let opts = DurabilityOptions::default();
        let durable = Durable::create_from(&dir, &ds, opts.clone()).expect("imports");
        assert!(durable.snapshot_bytes() > 0);
        drop(durable);
        assert!(matches!(
            Durable::create_from(&dir, &ds, opts.clone()),
            Err(Error::Io(_))
        ));
        let (back, durable) = Durable::open(&dir, opts).expect("reopen");
        assert_eq!(back.len(), 1);
        assert_eq!(durable.report().snapshot_triples, 1);
        let _ = std::fs::remove_dir_all(dir);
    }
}
