//! Snapshot-isolated reads: [`Snapshot`] — one published, immutable
//! version of the database — and [`Session`] — a reader pinning one
//! version with private execution counters.
//!
//! The C-Store-style read/write split the column engine already had
//! (immutable sorted tables + an in-memory delta) becomes an MVCC
//! publication protocol here: every commit forks the engine
//! ([`crate::Engine::fork`] — zero-copy for the column engine, whose
//! sorted runs live behind `Arc`s) and swaps the fork into the
//! database's `published` slot. Readers clone the `Arc` and keep
//! answering from *their* version for as long as they hold it; writers
//! never block readers and readers never block writers.

use std::sync::Arc;
use std::time::Instant;

use swans_plan::algebra::Plan;
use swans_plan::exec::{EngineError, QueryBudget};
use swans_plan::queries::{build_plan, QueryContext, QueryId};
use swans_plan::sparql::compile_sparql;
use swans_rdf::Dataset;
use swans_storage::StorageManager;

use crate::engine::Engine;
use crate::error::Error;
use crate::result::ResultSet;
use crate::store::{QueryRun, StoreConfig};

/// One immutable, versioned view of the database: the logical data set,
/// the physical configuration, and a snapshot fork of the engine.
///
/// Snapshots are published by the writer (one per acknowledged commit,
/// merge included) and handed out behind `Arc`s — see
/// [`Database::snapshot`](crate::Database::snapshot). A pinned snapshot
/// keeps answering bit-identically while newer versions are published
/// and dropped; its column data is shared (`Arc`), never copied, and
/// never mutated (merges *replace* column vectors, they do not touch
/// them).
pub struct Snapshot {
    pub(crate) version: u64,
    pub(crate) dataset: Arc<Dataset>,
    pub(crate) config: StoreConfig,
    pub(crate) storage: StorageManager,
    /// The engine fork answering this version's queries; `None` when the
    /// engine does not support forking (reads then fall back to the
    /// writer lock at the [`Database`](crate::Database) level).
    pub(crate) engine: Option<Arc<dyn Engine>>,
    pub(crate) pending: usize,
}

/// The typed error for engines without snapshot support.
pub(crate) fn no_fork_error() -> Error {
    Error::Engine(EngineError::Unsupported(
        "engine has no snapshot fork: reads go through the writer lock".into(),
    ))
}

/// Compiles SPARQL for a layout: parse → plan → optimize → lower.
pub(crate) fn compile(
    dataset: &Dataset,
    config: &StoreConfig,
    sparql: &str,
) -> Result<swans_plan::CompiledQuery, Error> {
    Ok(compile_sparql(sparql, dataset, config.layout.scheme())?)
}

/// Executes `plan` on `engine` under the benchmark measurement protocol.
///
/// The I/O window is read from `storage`'s shared counters: with
/// concurrent executions in flight the attribution is best-effort (the
/// counters are database-global), while `user_seconds` is always this
/// call's own wall clock.
pub(crate) fn run_plan_on(
    engine: &dyn Engine,
    storage: &StorageManager,
    plan: &Plan,
) -> Result<QueryRun, EngineError> {
    let io_before = storage.stats();
    let start = Instant::now();
    let rows = engine.execute(plan)?.into_ids();
    let user_seconds = start.elapsed().as_secs_f64();
    let io = storage.stats().since(&io_before);
    Ok(QueryRun {
        rows,
        user_seconds,
        real_seconds: user_seconds + io.io_seconds,
        io,
    })
}

impl Snapshot {
    /// The version number of this snapshot — strictly increasing with
    /// every published commit, starting at 1 for the freshly opened
    /// database.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The logical data set of this version (triples + dictionary).
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.dataset
    }

    /// The configuration the database was opened under.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Applied-but-unmerged mutations buffered at publication time.
    pub fn pending_delta(&self) -> usize {
        self.pending
    }

    /// Whether this snapshot carries its own engine fork — `false` only
    /// for third-party engines without [`Engine::fork`] support.
    pub fn isolated(&self) -> bool {
        self.engine.is_some()
    }

    fn engine(&self) -> Result<&dyn Engine, Error> {
        self.engine.as_deref().ok_or_else(no_fork_error)
    }

    /// Parses, plans and executes a SPARQL query against *this* version.
    pub fn query(&self, sparql: &str) -> Result<ResultSet, Error> {
        let compiled = compile(&self.dataset, &self.config, sparql)?;
        let results = self.engine()?.execute(&compiled.plan)?;
        Ok(results
            .with_columns(compiled.columns)
            .with_dataset(self.dataset.clone()))
    }

    /// [`Snapshot::query`] under a resource budget: the deadline,
    /// cancellation token, and memory limit in `budget` are checked
    /// cooperatively throughout execution; a tripped budget surfaces as
    /// [`EngineError::Cancelled`] (wrapped in
    /// [`Error::Engine`]) — never a panic, and the snapshot pin is
    /// released as usual when the caller drops its handles.
    pub fn query_budgeted(&self, sparql: &str, budget: &QueryBudget) -> Result<ResultSet, Error> {
        let compiled = compile(&self.dataset, &self.config, sparql)?;
        let results = self.engine()?.execute_budgeted(&compiled.plan, budget)?;
        Ok(results
            .with_columns(compiled.columns)
            .with_dataset(self.dataset.clone()))
    }

    /// Executes a raw logical plan against this version.
    pub fn execute_plan(&self, plan: &Plan) -> Result<ResultSet, Error> {
        let results = self.engine()?.execute(plan)?;
        Ok(results.with_dataset(self.dataset.clone()))
    }

    /// [`Snapshot::execute_plan`] under a resource budget — see
    /// [`Snapshot::query_budgeted`].
    pub fn execute_plan_budgeted(
        &self,
        plan: &Plan,
        budget: &QueryBudget,
    ) -> Result<ResultSet, Error> {
        let results = self.engine()?.execute_budgeted(plan, budget)?;
        Ok(results.with_dataset(self.dataset.clone()))
    }

    /// Executes a plan under the measurement protocol (see
    /// [`QueryRun`]'s caveat on I/O attribution under concurrency).
    pub fn run_plan(&self, plan: &Plan) -> Result<QueryRun, Error> {
        Ok(run_plan_on(self.engine()?, &self.storage, plan)?)
    }

    /// Runs benchmark query `q` against this version.
    pub fn run_benchmark(&self, q: QueryId, ctx: &QueryContext) -> Result<QueryRun, Error> {
        let plan = build_plan(q, self.config.layout.scheme(), ctx);
        self.run_plan(&plan)
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("version", &self.version)
            .field("triples", &self.dataset.len())
            .field("pending", &self.pending)
            .field("isolated", &self.isolated())
            .finish()
    }
}

/// A reader session: pins one [`Snapshot`] for its whole lifetime and
/// executes on a **private** engine fork, so
///
/// * every query in the session answers from the same consistent
///   version, no matter what the writer publishes meanwhile, and
/// * execution counters ([`Session::stat_counters`]) are the session's
///   own — concurrent sessions never cross-contaminate their dispatch
///   statistics.
///
/// Created by [`Database::session`](crate::Database::session); the
/// HTTP front door (`swans-serve`) opens one per request.
pub struct Session {
    snapshot: Arc<Snapshot>,
    engine: Box<dyn Engine>,
}

impl Session {
    pub(crate) fn pin(snapshot: Arc<Snapshot>) -> Result<Self, Error> {
        let engine = snapshot
            .engine
            .as_ref()
            .and_then(|e| e.fork())
            .ok_or_else(no_fork_error)?;
        Ok(Self { snapshot, engine })
    }

    /// The pinned snapshot.
    pub fn snapshot(&self) -> &Arc<Snapshot> {
        &self.snapshot
    }

    /// The pinned version number.
    pub fn version(&self) -> u64 {
        self.snapshot.version
    }

    /// The pinned logical data set.
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.snapshot.dataset
    }

    /// Parses, plans and executes a SPARQL query against the pinned
    /// version, on this session's private engine fork.
    pub fn query(&self, sparql: &str) -> Result<ResultSet, Error> {
        let snap = &self.snapshot;
        let compiled = compile(&snap.dataset, &snap.config, sparql)?;
        let results = self.engine.execute(&compiled.plan)?;
        Ok(results
            .with_columns(compiled.columns)
            .with_dataset(snap.dataset.clone()))
    }

    /// [`Session::query`] under the measurement protocol: also reports
    /// timing and I/O (see [`QueryRun`]'s attribution caveat — the I/O
    /// window is database-global, the user time is this session's own).
    pub fn query_timed(&self, sparql: &str) -> Result<(ResultSet, QueryRun), Error> {
        let snap = &self.snapshot;
        let compiled = compile(&snap.dataset, &snap.config, sparql)?;
        let mut run = run_plan_on(self.engine.as_ref(), &snap.storage, &compiled.plan)?;
        let rows = std::mem::take(&mut run.rows);
        let results = ResultSet::new(rows, compiled.plan.output_kinds())
            .with_columns(compiled.columns)
            .with_dataset(snap.dataset.clone());
        Ok((results, run))
    }

    /// [`Session::query`] under a resource budget: the deadline,
    /// cancellation token, and memory limit in `budget` are checked
    /// cooperatively throughout execution on this session's private
    /// fork; a tripped budget surfaces as
    /// [`EngineError::Cancelled`] — never a
    /// panic, and the session (with its snapshot pin) stays usable for
    /// further queries.
    pub fn query_budgeted(&self, sparql: &str, budget: &QueryBudget) -> Result<ResultSet, Error> {
        let snap = &self.snapshot;
        let compiled = compile(&snap.dataset, &snap.config, sparql)?;
        let results = self.engine.execute_budgeted(&compiled.plan, budget)?;
        Ok(results
            .with_columns(compiled.columns)
            .with_dataset(snap.dataset.clone()))
    }

    /// Executes a raw logical plan against the pinned version.
    pub fn execute_plan(&self, plan: &Plan) -> Result<ResultSet, Error> {
        let results = self.engine.execute(plan)?;
        Ok(results.with_dataset(self.snapshot.dataset.clone()))
    }

    /// [`Session::execute_plan`] under a resource budget — see
    /// [`Session::query_budgeted`].
    pub fn execute_plan_budgeted(
        &self,
        plan: &Plan,
        budget: &QueryBudget,
    ) -> Result<ResultSet, Error> {
        let results = self.engine.execute_budgeted(plan, budget)?;
        Ok(results.with_dataset(self.snapshot.dataset.clone()))
    }

    /// Runs benchmark query `q` against the pinned version.
    pub fn run_benchmark(&self, q: QueryId, ctx: &QueryContext) -> Result<QueryRun, Error> {
        let plan = build_plan(q, self.snapshot.config.layout.scheme(), ctx);
        Ok(run_plan_on(
            self.engine.as_ref(),
            &self.snapshot.storage,
            &plan,
        )?)
    }

    /// This session's own named execution counters (kernel dispatches,
    /// merges, ...) — zeroed at session creation, bumped only by this
    /// session's queries.
    pub fn stat_counters(&self) -> Vec<(&'static str, u64)> {
        self.engine.stat_counters()
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("version", &self.snapshot.version)
            .finish()
    }
}
