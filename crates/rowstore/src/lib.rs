//! # swans-rowstore
//!
//! The row-store engine — the reproduction's stand-in for "DBX", the
//! commercial row store of the paper's §4.
//!
//! Architectural commitments:
//!
//! * **Clustered B+tree storage.** A table *is* its clustered index
//!   ([`swans_btree::BTree`], bulk-loaded, key-prefix compressed); leaf
//!   pages hold full rows, so scans move whole rows across the I/O
//!   boundary — the row store reads 3×8 bytes per triple where the column
//!   store reads only the columns it needs.
//! * **TID-style secondary indexes.** Unclustered indexes store key columns
//!   plus a row locator; resolving a locator costs a scattered page touch
//!   in the clustered tree. A rule/cost hybrid picks the access path:
//!   clustered prefix if available, else a selective secondary, else a full
//!   scan (probing a secondary for a huge result would cost more scattered
//!   I/O than scanning — the reason the paper's DBX "remaining indices have
//!   little impact").
//! * **Tuple-at-a-time Volcano execution.** Operators are chained row
//!   iterators with dynamic dispatch per row — the classical row-engine
//!   processing model whose per-tuple overhead the paper contrasts with
//!   column-at-a-time execution.
//! * **In-place writes.** [`RowEngine::apply`](engine::RowEngine::apply)
//!   takes each mutation straight into the clustered B+tree and every
//!   secondary index (entry insert/delete plus TID-locator fixup) — the
//!   classical row-store update profile: cost paid per operation, per
//!   index, with no deferred merge step.

pub mod engine;
pub mod row;
pub mod table;

pub use engine::RowEngine;
pub use row::Row;
pub use table::{RowTable, TableOptions};
