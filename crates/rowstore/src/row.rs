//! The fixed-capacity row passed between Volcano operators.

/// Maximum operator schema width. The widest benchmark schema is 9 columns
/// (q5/q7 after two joins); 12 leaves headroom for user plans.
pub const MAX_COLS: usize = 12;

/// A row flowing through the Volcano iterators: a short inline array, so
/// passing rows costs a copy but never an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Row {
    vals: [u64; MAX_COLS],
    len: u8,
}

impl Row {
    /// An empty row.
    pub const EMPTY: Row = Row {
        vals: [0; MAX_COLS],
        len: 0,
    };

    /// Builds a row from a slice.
    ///
    /// # Panics
    /// Panics if `vals` exceeds [`MAX_COLS`].
    #[inline]
    pub fn from_slice(vals: &[u64]) -> Self {
        assert!(vals.len() <= MAX_COLS, "row too wide: {}", vals.len());
        let mut r = Row::EMPTY;
        r.vals[..vals.len()].copy_from_slice(vals);
        r.len = vals.len() as u8;
        r
    }

    /// Number of columns.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True for the zero-column row.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Column accessor.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        debug_assert!(i < self.len());
        self.vals[i]
    }

    /// The columns as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[u64] {
        &self.vals[..self.len()]
    }

    /// Appends a column.
    #[inline]
    pub fn push(&mut self, v: u64) {
        assert!(self.len() < MAX_COLS, "row overflow");
        self.vals[self.len()] = v;
        self.len += 1;
    }

    /// `self ++ other` (join output).
    #[inline]
    pub fn concat(&self, other: &Row) -> Row {
        let n = self.len() + other.len();
        assert!(n <= MAX_COLS, "joined row too wide: {n}");
        let mut r = *self;
        r.vals[self.len()..n].copy_from_slice(other.as_slice());
        r.len = n as u8;
        r
    }

    /// Projects columns `cols` into a new row.
    #[inline]
    pub fn project(&self, cols: &[usize]) -> Row {
        let mut r = Row::EMPTY;
        for (i, &c) in cols.iter().enumerate() {
            r.vals[i] = self.get(c);
        }
        r.len = cols.len() as u8;
        r
    }

    /// Converts to an owned vector (result delivery).
    pub fn to_vec(&self) -> Vec<u64> {
        self.as_slice().to_vec()
    }
}

impl From<&[u64]> for Row {
    fn from(vals: &[u64]) -> Self {
        Row::from_slice(vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_slice_roundtrip() {
        let r = Row::from_slice(&[1, 2, 3]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.as_slice(), &[1, 2, 3]);
        assert_eq!(r.get(1), 2);
    }

    #[test]
    fn concat_joins_rows() {
        let a = Row::from_slice(&[1, 2]);
        let b = Row::from_slice(&[3]);
        assert_eq!(a.concat(&b).as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn project_reorders() {
        let r = Row::from_slice(&[10, 20, 30]);
        assert_eq!(r.project(&[2, 0]).as_slice(), &[30, 10]);
    }

    #[test]
    #[should_panic(expected = "too wide")]
    fn concat_overflow_panics() {
        let a = Row::from_slice(&[0; 9]);
        let b = Row::from_slice(&[0; 9]);
        let _ = a.concat(&b);
    }

    #[test]
    fn push_appends() {
        let mut r = Row::EMPTY;
        r.push(7);
        r.push(8);
        assert_eq!(r.as_slice(), &[7, 8]);
    }

    #[test]
    fn equality_ignores_slack() {
        let mut a = Row::from_slice(&[1, 2, 3]);
        let b = Row::from_slice(&[1, 2]);
        assert_ne!(a, b);
        a = Row::from_slice(&[1, 2]);
        assert_eq!(a, b);
    }
}
