//! Row tables: a clustered B+tree plus TID-style secondary indexes, with a
//! rule/cost access-path chooser.

use swans_btree::{BTree, BTreeOptions};
use swans_storage::StorageManager;

use crate::row::Row;

/// Table construction options.
#[derive(Debug, Clone)]
pub struct TableOptions {
    /// Clustering order: key position → logical column.
    pub cluster_perm: Vec<usize>,
    /// Secondary index orders, each a full permutation of the logical
    /// columns (only a prefix is used for searching; entries carry a row
    /// locator into the clustered tree).
    pub secondary_perms: Vec<Vec<usize>>,
    /// Key-prefix compression on the clustered tree (mature-B+tree
    /// behaviour, §4.1).
    pub prefix_compressed: bool,
}

#[derive(Clone)]
struct Secondary {
    perm: Vec<usize>,
    tree: BTree,
}

/// A row table stored as its clustered index. Cloning deep-copies the
/// underlying B+trees (see [`crate::RowEngine`]'s clone semantics).
#[derive(Clone)]
pub struct RowTable {
    arity: usize,
    cluster_perm: Vec<usize>,
    clustered: BTree,
    secondaries: Vec<Secondary>,
}

/// The access path selected for a scan (exposed for tests and EXPLAIN-style
/// diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPath {
    /// Range scan on the clustered tree using a bound key prefix.
    ClusteredPrefix {
        /// Number of bound leading key columns.
        prefix_len: usize,
    },
    /// Probe of secondary index `index`, fetching rows via locators.
    Secondary {
        /// Index into the table's secondary list.
        index: usize,
        /// Number of bound leading key columns of that secondary.
        prefix_len: usize,
    },
    /// Full clustered scan.
    FullScan,
}

impl RowTable {
    /// Bulk-loads a table from row-major `rows` of width `arity`.
    pub fn load(
        storage: &StorageManager,
        name: &str,
        arity: usize,
        rows: &[u64],
        opts: &TableOptions,
    ) -> Self {
        assert_eq!(opts.cluster_perm.len(), arity);
        let n = rows.len() / arity;

        // Clustered tree: rows permuted into cluster-key order.
        let mut clustered_rows = Vec::with_capacity(rows.len());
        for r in 0..n {
            let row = &rows[r * arity..(r + 1) * arity];
            for &c in &opts.cluster_perm {
                clustered_rows.push(row[c]);
            }
        }
        let clustered = BTree::bulk_load(
            storage,
            &format!("{name}/clustered"),
            arity,
            clustered_rows,
            BTreeOptions {
                prefix_compressed: opts.prefix_compressed,
            },
        );

        // Secondaries: (permuted key columns ..., locator into clustered).
        // Locators are positions in the clustered sort order, so build them
        // from the already-sorted clustered tree.
        let mut secondaries = Vec::with_capacity(opts.secondary_perms.len());
        for (si, perm) in opts.secondary_perms.iter().enumerate() {
            assert_eq!(perm.len(), arity);
            let mut sec_rows = Vec::with_capacity(n * (arity + 1));
            for rowid in 0..clustered.len() {
                let crow = clustered.row(rowid); // in cluster-key order
                                                 // Recover the logical row, then permute for the secondary.
                for &c in perm {
                    let pos = opts
                        .cluster_perm
                        .iter()
                        .position(|&cc| cc == c)
                        .expect("cluster_perm is a permutation");
                    sec_rows.push(crow[pos]);
                }
                sec_rows.push(rowid as u64);
            }
            let tree = BTree::bulk_load(
                storage,
                &format!("{name}/sec{si}"),
                arity + 1,
                sec_rows,
                BTreeOptions::default(),
            );
            secondaries.push(Secondary {
                perm: perm.clone(),
                tree,
            });
        }

        Self {
            arity,
            cluster_perm: opts.cluster_perm.clone(),
            clustered,
            secondaries,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.clustered.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.clustered.is_empty()
    }

    /// Number of logical columns.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Inserts one logical row, maintaining the clustered tree and every
    /// secondary index (entry insertion plus TID-locator fixup for the
    /// clustered positions the insert shifted).
    ///
    /// # Panics
    /// Panics if `row.len() != arity`.
    pub fn insert(&mut self, row: &[u64]) {
        assert_eq!(row.len(), self.arity, "row arity mismatch");
        let krow: Vec<u64> = self.cluster_perm.iter().map(|&c| row[c]).collect();
        let pos = self.clustered.insert_row(&krow);
        for sec in &mut self.secondaries {
            // Old entries pointing at or past the insertion point slid
            // one position down the clustered order.
            sec.tree.shift_column_tail(self.arity, pos as u64, 1);
            let mut srow: Vec<u64> = sec.perm.iter().map(|&c| row[c]).collect();
            srow.push(pos as u64);
            sec.tree.insert_row(&srow);
        }
    }

    /// Deletes every copy of one logical row from the clustered tree and
    /// all secondaries, returning how many copies were removed.
    pub fn delete(&mut self, row: &[u64]) -> usize {
        assert_eq!(row.len(), self.arity, "row arity mismatch");
        let krow: Vec<u64> = self.cluster_perm.iter().map(|&c| row[c]).collect();
        let removed = self.clustered.remove_prefix(&krow);
        if removed.is_empty() {
            return 0;
        }
        for sec in &mut self.secondaries {
            let sprefix: Vec<u64> = sec.perm.iter().map(|&c| row[c]).collect();
            // All entries matching the full column prefix are copies of
            // this row; their locators all lay in `removed`.
            sec.tree.remove_prefix(&sprefix);
            sec.tree
                .shift_column_tail(self.arity, removed.start as u64, -(removed.len() as i64));
        }
        removed.len()
    }

    /// Chooses the access path for the given per-column bounds.
    ///
    /// Rules (a small rule/cost hybrid in the spirit of a commercial
    /// optimizer):
    /// 1. any bound clustered key prefix wins;
    /// 2. otherwise the secondary with the longest bound prefix, *if* its
    ///    estimated match count costs fewer scattered page fetches than a
    ///    full sequential scan would read;
    /// 3. otherwise a full scan.
    pub fn choose_path(&self, bounds: &[Option<u64>]) -> AccessPath {
        debug_assert_eq!(bounds.len(), self.arity);
        let cluster_prefix = prefix_len(&self.cluster_perm, bounds);
        if cluster_prefix > 0 {
            return AccessPath::ClusteredPrefix {
                prefix_len: cluster_prefix,
            };
        }
        let mut best: Option<(usize, usize)> = None; // (index, prefix_len)
        for (i, sec) in self.secondaries.iter().enumerate() {
            let p = prefix_len(&sec.perm, bounds);
            if p > 0 && best.is_none_or(|(_, bp)| p > bp) {
                best = Some((i, p));
            }
        }
        if let Some((index, plen)) = best {
            // Estimate matches by probing the secondary (an index-page
            // lookup a real optimizer gets from statistics).
            let prefix: Vec<u64> = self.secondaries[index].perm[..plen]
                .iter()
                .map(|&c| bounds[c].expect("bound by construction"))
                .collect();
            let matches = self.secondaries[index].tree.probe(&prefix).len();
            if matches < self.clustered.leaf_pages() as usize {
                return AccessPath::Secondary {
                    index,
                    prefix_len: plen,
                };
            }
        }
        AccessPath::FullScan
    }

    /// Streams logical rows matching `bounds`, applying any residual
    /// filters the access path does not cover.
    pub fn scan<'a>(&'a self, bounds: &[Option<u64>]) -> Box<dyn Iterator<Item = Row> + 'a> {
        let path = self.choose_path(bounds);
        let residual: Vec<(usize, u64)> = bounds
            .iter()
            .enumerate()
            .filter_map(|(c, b)| b.map(|v| (c, v)))
            .collect();
        match path {
            AccessPath::ClusteredPrefix { prefix_len } => {
                let prefix: Vec<u64> = self.cluster_perm[..prefix_len]
                    .iter()
                    .map(|&c| bounds[c].expect("bound"))
                    .collect();
                let range = self.clustered.probe(&prefix);
                let perm = self.cluster_perm.clone();
                Box::new(
                    self.clustered
                        .scan(range)
                        .map(move |krow| unpermute(krow, &perm))
                        .filter(move |row| residual_ok(row, &residual)),
                )
            }
            AccessPath::Secondary { index, prefix_len } => {
                let sec = &self.secondaries[index];
                let prefix: Vec<u64> = sec.perm[..prefix_len]
                    .iter()
                    .map(|&c| bounds[c].expect("bound"))
                    .collect();
                let range = sec.tree.probe(&prefix);
                let perm = self.cluster_perm.clone();
                let arity = self.arity;
                Box::new(
                    sec.tree
                        .scan(range)
                        .map(move |srow| srow[arity] as usize)
                        .collect::<Vec<_>>()
                        .into_iter()
                        .map(move |rowid| {
                            // TID lookup: scattered page touch.
                            let krow = self.clustered.fetch_row(rowid);
                            unpermute(krow, &perm)
                        })
                        .filter(move |row| residual_ok(row, &residual)),
                )
            }
            AccessPath::FullScan => {
                let perm = self.cluster_perm.clone();
                Box::new(
                    self.clustered
                        .scan(self.clustered.full_range())
                        .map(move |krow| unpermute(krow, &perm))
                        .filter(move |row| residual_ok(row, &residual)),
                )
            }
        }
    }
}

/// Length of the bound prefix of `perm` under `bounds`.
fn prefix_len(perm: &[usize], bounds: &[Option<u64>]) -> usize {
    perm.iter().take_while(|&&c| bounds[c].is_some()).count()
}

/// Rebuilds the logical row from a cluster-key-ordered row.
#[inline]
fn unpermute(krow: &[u64], perm: &[usize]) -> Row {
    let mut row = Row::EMPTY;
    let mut vals = [0u64; crate::row::MAX_COLS];
    for (pos, &col) in perm.iter().enumerate() {
        vals[col] = krow[pos];
    }
    for &v in vals.iter().take(perm.len()) {
        row.push(v);
    }
    row
}

#[inline]
fn residual_ok(row: &Row, residual: &[(usize, u64)]) -> bool {
    residual.iter().all(|&(c, v)| row.get(c) == v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swans_storage::MachineProfile;

    fn storage() -> StorageManager {
        StorageManager::new(MachineProfile::B)
    }

    /// Triples (s,p,o): s in 0..100, p = s % 5, o = s * 10.
    fn rows() -> Vec<u64> {
        (0..100u64).flat_map(|s| [s, s % 5, s * 10]).collect()
    }

    fn pso_table(m: &StorageManager) -> RowTable {
        RowTable::load(
            m,
            "t",
            3,
            &rows(),
            &TableOptions {
                cluster_perm: vec![1, 0, 2],                         // PSO
                secondary_perms: vec![vec![0, 1, 2], vec![2, 0, 1]], // SPO, OSP
                prefix_compressed: true,
            },
        )
    }

    #[test]
    fn clustered_prefix_path_for_bound_property() {
        let m = storage();
        let t = pso_table(&m);
        let bounds = [None, Some(3), None];
        assert_eq!(
            t.choose_path(&bounds),
            AccessPath::ClusteredPrefix { prefix_len: 1 }
        );
        let got: Vec<Row> = t.scan(&bounds).collect();
        assert_eq!(got.len(), 20);
        assert!(got.iter().all(|r| r.get(1) == 3));
    }

    #[test]
    fn secondary_path_for_selective_subject() {
        let m = storage();
        // Big enough that a full scan costs more than one TID fetch.
        let rows: Vec<u64> = (0..10_000u64).flat_map(|s| [s, s % 5, s * 10]).collect();
        let t = RowTable::load(
            &m,
            "t",
            3,
            &rows,
            &TableOptions {
                cluster_perm: vec![1, 0, 2],
                secondary_perms: vec![vec![0, 1, 2], vec![2, 0, 1]],
                prefix_compressed: true,
            },
        );
        let bounds = [Some(42), None, None];
        assert!(matches!(
            t.choose_path(&bounds),
            AccessPath::Secondary { index: 0, .. }
        ));
        let got: Vec<Row> = t.scan(&bounds).collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].as_slice(), &[42, 2, 420]);
    }

    /// On a single-page table the cost rule rightly prefers a full scan
    /// over a TID probe.
    #[test]
    fn tiny_table_prefers_full_scan_over_secondary() {
        let m = storage();
        let t = pso_table(&m);
        assert_eq!(t.choose_path(&[Some(42), None, None]), AccessPath::FullScan);
        let got: Vec<Row> = t.scan(&[Some(42), None, None]).collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].as_slice(), &[42, 2, 420]);
    }

    #[test]
    fn full_scan_when_nothing_bound() {
        let m = storage();
        let t = pso_table(&m);
        assert_eq!(t.choose_path(&[None, None, None]), AccessPath::FullScan);
        assert_eq!(t.scan(&[None, None, None]).count(), 100);
    }

    #[test]
    fn unselective_secondary_falls_back_to_full_scan() {
        let m = storage();
        // One huge object value shared by everything.
        let rows: Vec<u64> = (0..50_000u64).flat_map(|s| [s, s % 5, 7]).collect();
        let t = RowTable::load(
            &m,
            "t",
            3,
            &rows,
            &TableOptions {
                cluster_perm: vec![1, 0, 2],
                secondary_perms: vec![vec![2, 0, 1]], // OSP
                prefix_compressed: false,
            },
        );
        // o=7 matches all rows: scattered fetches would dwarf a scan.
        assert_eq!(t.choose_path(&[None, None, Some(7)]), AccessPath::FullScan);
        assert_eq!(t.scan(&[None, None, Some(7)]).count(), 50_000);
    }

    #[test]
    fn residual_filters_apply_on_any_path() {
        let m = storage();
        let t = pso_table(&m);
        // p bound (clustered prefix) + o bound (residual).
        let got: Vec<Row> = t.scan(&[None, Some(3), Some(130)]).collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].as_slice(), &[13, 3, 130]);
        // both s and o bound, p free: secondary on SPO prefix s, residual o.
        let got: Vec<Row> = t.scan(&[Some(13), None, Some(130)]).collect();
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn clustered_scan_reads_fewer_pages_than_full() {
        let m = storage();
        let rows: Vec<u64> = (0..200_000u64).flat_map(|s| [s, s % 4, s]).collect();
        let t = RowTable::load(
            &m,
            "t",
            3,
            &rows,
            &TableOptions {
                cluster_perm: vec![1, 0, 2],
                secondary_perms: vec![],
                prefix_compressed: false,
            },
        );
        m.clear_pool();
        m.reset_stats();
        let n = t.scan(&[None, Some(2), None]).count();
        assert_eq!(n, 50_000);
        let prefix_bytes = m.stats().bytes_read;
        m.clear_pool();
        m.reset_stats();
        let _ = t.scan(&[None, None, None]).count();
        let full_bytes = m.stats().bytes_read;
        assert!(
            prefix_bytes * 3 < full_bytes,
            "prefix scan {prefix_bytes}B vs full {full_bytes}B"
        );
    }

    /// Inserts and deletes keep every access path (clustered prefix,
    /// secondary TID probe, full scan) answering correctly.
    #[test]
    fn insert_delete_maintain_all_access_paths() {
        let m = storage();
        let rows: Vec<u64> = (0..10_000u64).flat_map(|s| [s, s % 5, s * 10]).collect();
        let mut t = RowTable::load(
            &m,
            "t",
            3,
            &rows,
            &TableOptions {
                cluster_perm: vec![1, 0, 2],                         // PSO
                secondary_perms: vec![vec![0, 1, 2], vec![2, 0, 1]], // SPO, OSP
                prefix_compressed: true,
            },
        );
        // Insert a duplicate subject under a different property, twice.
        t.insert(&[42, 9, 777]);
        t.insert(&[42, 9, 777]);
        assert_eq!(t.len(), 10_002);
        // Secondary path on subject sees old and new rows.
        let got: Vec<Row> = t.scan(&[Some(42), None, None]).collect();
        assert_eq!(got.len(), 3);
        // Clustered-prefix path on the new property.
        let got: Vec<Row> = t.scan(&[None, Some(9), None]).collect();
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|r| r.as_slice() == [42, 9, 777]));

        // Delete removes both copies everywhere.
        assert_eq!(t.delete(&[42, 9, 777]), 2);
        assert_eq!(t.len(), 10_000);
        assert_eq!(t.scan(&[None, Some(9), None]).count(), 0);
        // Deleting a missing row is a no-op.
        assert_eq!(t.delete(&[1, 2, 3]), 0);
        // Locators survived the shifts: every subject still resolves to
        // its own row through the TID path.
        for s in [0u64, 41, 42, 43, 9_999] {
            let got: Vec<Row> = t.scan(&[Some(s), None, None]).collect();
            assert_eq!(got.len(), 1, "subject {s}");
            assert_eq!(got[0].as_slice(), &[s, s % 5, s * 10]);
        }
    }

    #[test]
    fn empty_table() {
        let m = storage();
        let t = RowTable::load(
            &m,
            "e",
            2,
            &[],
            &TableOptions {
                cluster_perm: vec![0, 1],
                secondary_perms: vec![vec![1, 0]],
                prefix_compressed: false,
            },
        );
        assert!(t.is_empty());
        assert_eq!(t.scan(&[Some(1), None]).count(), 0);
    }
}
