//! The row engine: plan execution with Volcano-style row iterators.

use std::collections::HashMap;
use std::hash::BuildHasherDefault;

use swans_plan::algebra::{CmpOp, Plan};
use swans_plan::exec::{EngineError, QueryBudget};
use swans_rdf::hash::{FxHashMap, FxHashSet, FxHasher};
use swans_rdf::{Delta, Id, SortOrder, Triple};
use swans_storage::StorageManager;

use crate::row::Row;
use crate::table::{RowTable, TableOptions};

type RowsIter<'a> = Box<dyn Iterator<Item = Row> + 'a>;

/// Rows between cooperative budget checks in the tuple-at-a-time loops
/// (the row engine's analogue of the column engine's per-morsel token
/// check — morsels are the same size).
const BUDGET_CHECK_ROWS: usize = 4096;

/// Index configuration for the triples table.
#[derive(Debug, Clone)]
pub struct TripleIndexConfig {
    /// Clustering order.
    pub cluster: SortOrder,
    /// Secondary index orders.
    pub secondaries: Vec<SortOrder>,
}

impl TripleIndexConfig {
    /// The configuration of Abadi et al. / the paper's first DBX setup:
    /// clustered SPO with unclustered POS and OSP.
    pub fn spo() -> Self {
        Self {
            cluster: SortOrder::Spo,
            secondaries: vec![SortOrder::Pos, SortOrder::Osp],
        }
    }

    /// The paper's improved setup (§4.1): clustered PSO plus unclustered
    /// B+trees on all five other permutations.
    pub fn pso() -> Self {
        Self {
            cluster: SortOrder::Pso,
            secondaries: vec![
                SortOrder::Spo,
                SortOrder::Pos,
                SortOrder::Osp,
                SortOrder::Sop,
                SortOrder::Ops,
            ],
        }
    }
}

/// The row-store engine instance: a triple-store layout and/or a
/// vertically-partitioned layout sharing one storage manager.
/// Cloning deep-copies the B+tree arenas: a clone is a fully independent
/// snapshot of the tables (the row store maintains its trees in place, so
/// snapshot isolation needs a real copy — unlike the column engine, whose
/// immutable sorted runs fork zero-copy).
#[derive(Default, Clone)]
pub struct RowEngine {
    triple: Option<RowTable>,
    props: FxHashMap<Id, RowTable>,
    /// Whether [`RowEngine::load_vertical`] ran — distinguishes "no
    /// vertically-partitioned layout at all" (an execution error) from "a
    /// property with no triples" (an empty scan).
    vertical_loaded: bool,
}

impl RowEngine {
    /// An engine with no tables loaded.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads the `triples` table under the given index configuration.
    pub fn load_triple_store(
        &mut self,
        storage: &StorageManager,
        triples: &[Triple],
        config: &TripleIndexConfig,
    ) {
        let rows: Vec<u64> = triples.iter().flat_map(|t| t.as_row()).collect();
        let opts = TableOptions {
            cluster_perm: config.cluster.permutation().to_vec(),
            secondary_perms: config
                .secondaries
                .iter()
                .map(|o| o.permutation().to_vec())
                .collect(),
            prefix_compressed: true,
        };
        self.triple = Some(RowTable::load(storage, "triples", 3, &rows, &opts));
    }

    /// Loads the vertically-partitioned layout: per property a 2-column
    /// table clustered on SO with an unclustered OS index (§4.2).
    pub fn load_vertical(&mut self, storage: &StorageManager, triples: &[Triple]) {
        let mut by_prop: FxHashMap<Id, Vec<u64>> = FxHashMap::default();
        for t in triples {
            let rows = by_prop.entry(t.p).or_default();
            rows.push(t.s);
            rows.push(t.o);
        }
        let mut props: Vec<Id> = by_prop.keys().copied().collect();
        props.sort_unstable();
        let opts = Self::vp_table_options();
        for p in props {
            let rows = by_prop.remove(&p).expect("key listed");
            let table = RowTable::load(storage, &format!("vp/{p}"), 2, &rows, &opts);
            self.props.insert(p, table);
        }
        self.vertical_loaded = true;
    }

    /// The vertically-partitioned per-property table policy (§4.2):
    /// clustered SO, unclustered OS, prefix compression.
    fn vp_table_options() -> TableOptions {
        TableOptions {
            cluster_perm: vec![0, 1],          // SO
            secondary_perms: vec![vec![1, 0]], // OS
            prefix_compressed: true,
        }
    }

    /// Applies a [`Delta`] in place — the row store's simpler write path:
    /// no write-store/merge split, just B+tree insert-delete against the
    /// clustered tree and every secondary of each loaded layout, deletes
    /// before inserts. Inserting into a property the vertically-partitioned
    /// layout has never seen creates its table on the fly.
    pub fn apply(&mut self, storage: &StorageManager, delta: &Delta) -> Result<(), EngineError> {
        if self.triple.is_none() && !self.vertical_loaded {
            return Err(EngineError::Unsupported(
                "no layout loaded to apply a delta to".into(),
            ));
        }
        for t in &delta.deletes {
            if let Some(table) = &mut self.triple {
                table.delete(&t.as_row());
            }
            if let Some(table) = self.props.get_mut(&t.p) {
                table.delete(&[t.s, t.o]);
            }
        }
        for t in &delta.inserts {
            if let Some(table) = &mut self.triple {
                table.insert(&t.as_row());
            }
            if self.vertical_loaded {
                let table = self.props.entry(t.p).or_insert_with(|| {
                    RowTable::load(
                        storage,
                        &format!("vp/{}", t.p),
                        2,
                        &[],
                        &Self::vp_table_options(),
                    )
                });
                table.insert(&[t.s, t.o]);
            }
        }
        Ok(())
    }

    /// Whether a triple-store layout is loaded.
    pub fn has_triple_store(&self) -> bool {
        self.triple.is_some()
    }

    /// Number of loaded property tables.
    pub fn property_table_count(&self) -> usize {
        self.props.len()
    }

    /// Executes a plan to a materialized row bag.
    ///
    /// The plan is validated first; structural problems, scans against a
    /// layout this engine never loaded, and unsupported constructs all
    /// surface as [`EngineError`] — plan execution never panics.
    pub fn execute(&self, plan: &Plan) -> Result<Vec<Vec<u64>>, EngineError> {
        self.execute_budgeted(plan, &QueryBudget::unlimited())
    }

    /// [`RowEngine::execute`] under a resource budget: the deadline,
    /// cancellation token, and memory limit are checked cooperatively —
    /// every `BUDGET_CHECK_ROWS` (4096) rows in the materializing loops — and
    /// a tripped budget surfaces as [`EngineError::Cancelled`]. Join
    /// builds, group tables, distinct sets, and the result rows charge
    /// the budget as they grow.
    pub fn execute_budgeted(
        &self,
        plan: &Plan,
        budget: &QueryBudget,
    ) -> Result<Vec<Vec<u64>>, EngineError> {
        plan.validate().map_err(EngineError::InvalidPlan)?;
        budget.check()?;
        let row_bytes = 8 * plan.arity() as u64;
        let mut out: Vec<Vec<u64>> = Vec::new();
        let mut pending = 0u64;
        for r in self.iter(plan, budget)? {
            out.push(r.to_vec());
            pending += row_bytes;
            if out.len() % BUDGET_CHECK_ROWS == 0 {
                budget.charge(std::mem::take(&mut pending))?;
                budget.check()?;
            }
        }
        budget.charge(pending)?;
        budget.check()?;
        Ok(out)
    }

    /// Builds the Volcano iterator tree for `plan` (already validated).
    /// Operators that materialize eagerly (join builds, the leapfrog
    /// fold, group-count tables) check and charge `budget` while they
    /// build; streaming operators are policed by their consumer's loop.
    fn iter<'a>(
        &'a self,
        plan: &'a Plan,
        budget: &QueryBudget,
    ) -> Result<RowsIter<'a>, EngineError> {
        Ok(match plan {
            Plan::ScanTriples { s, p, o } => {
                let t = self
                    .triple
                    .as_ref()
                    .ok_or(EngineError::MissingTripleStore)?;
                t.scan(&[*s, *p, *o])
            }
            Plan::ScanProperty {
                property,
                s,
                o,
                emit_property,
            } => {
                if !self.vertical_loaded {
                    return Err(EngineError::MissingVerticalLayout);
                }
                let Some(t) = self.props.get(property) else {
                    // A property with no triples (possible after
                    // splitting): empty.
                    return Ok(Box::new(std::iter::empty()));
                };
                let base = t.scan(&[*s, *o]);
                if *emit_property {
                    let p = *property;
                    Box::new(base.map(move |r| Row::from_slice(&[r.get(0), p, r.get(1)])))
                } else {
                    base
                }
            }
            Plan::Select { input, pred } => {
                let col = pred.col;
                let value = pred.value;
                let ne = pred.op == CmpOp::Ne;
                Box::new(
                    self.iter(input, budget)?
                        .filter(move |r| (r.get(col) == value) != ne),
                )
            }
            Plan::FilterIn { input, col, values } => {
                let set: FxHashSet<u64> = values.iter().copied().collect();
                let col = *col;
                Box::new(
                    self.iter(input, budget)?
                        .filter(move |r| set.contains(&r.get(col))),
                )
            }
            Plan::Join {
                left,
                right,
                left_col,
                right_col,
            } => {
                // Hash join: build on the left input, probe with the right,
                // streaming. Duplicate chains are kept allocation-free.
                let build: Vec<Row> = self.iter(left, budget)?.collect();
                // Build rows + hash heads + chain links.
                budget.charge((std::mem::size_of::<Row>() as u64 + 16) * build.len() as u64)?;
                budget.check()?;
                let mut heads: HashMap<u64, u32, BuildHasherDefault<FxHasher>> =
                    HashMap::with_capacity_and_hasher(build.len(), Default::default());
                let mut next = vec![u32::MAX; build.len()];
                for (i, r) in build.iter().enumerate() {
                    let e = heads.entry(r.get(*left_col)).or_insert(u32::MAX);
                    next[i] = *e;
                    *e = i as u32;
                }
                let right_iter = self.iter(right, budget)?;
                let rc = *right_col;
                Box::new(HashJoinIter {
                    build,
                    heads,
                    next,
                    right: right_iter,
                    rc,
                    current: None,
                })
            }
            Plan::LeapfrogJoin { inputs, cols } => {
                // The row store has no multi-way kernel: evaluate the
                // binary hash-join fold the operator is defined as,
                // materialized (the key keeps position cols[0] of every
                // accumulated schema — input 0 sits at offset 0).
                let key_col = cols[0];
                let row_bytes = std::mem::size_of::<Row>() as u64;
                let mut acc: Vec<Row> = self.iter(&inputs[0], budget)?.collect();
                budget.charge(row_bytes * acc.len() as u64)?;
                for (inp, &rc) in inputs[1..].iter().zip(&cols[1..]) {
                    let mut by_key: FxHashMap<u64, Vec<Row>> = FxHashMap::default();
                    let mut n = 0usize;
                    for r in self.iter(inp, budget)? {
                        by_key.entry(r.get(rc)).or_default().push(r);
                        n += 1;
                        if n % BUDGET_CHECK_ROWS == 0 {
                            budget.check()?;
                        }
                    }
                    budget.charge((row_bytes + 8) * n as u64)?;
                    // The fold output can blow up quadratically on skewed
                    // keys: charge as it grows so a memory limit aborts
                    // *during* the blow-up, and honour mid-query
                    // cancellation between batches.
                    let mut next = Vec::new();
                    let mut charged = 0u64;
                    for l in &acc {
                        if let Some(matches) = by_key.get(&l.get(key_col)) {
                            for r in matches {
                                next.push(l.concat(r));
                            }
                        }
                        let grown = row_bytes * next.len() as u64;
                        if grown - charged >= row_bytes * BUDGET_CHECK_ROWS as u64 {
                            budget.charge(grown - charged)?;
                            charged = grown;
                            budget.check()?;
                        }
                    }
                    budget.charge(row_bytes * next.len() as u64 - charged)?;
                    acc = next;
                }
                Box::new(acc.into_iter())
            }
            Plan::Project { input, cols } => {
                let cols = cols.clone();
                Box::new(self.iter(input, budget)?.map(move |r| r.project(&cols)))
            }
            Plan::GroupCount { input, keys } => {
                let mut groups: FxHashMap<Row, u64> = FxHashMap::default();
                let mut n = 0usize;
                for r in self.iter(input, budget)? {
                    *groups.entry(r.project(keys)).or_insert(0) += 1;
                    n += 1;
                    if n % BUDGET_CHECK_ROWS == 0 {
                        budget.check()?;
                    }
                }
                budget.charge((std::mem::size_of::<Row>() as u64 + 8) * groups.len() as u64)?;
                Box::new(groups.into_iter().map(|(mut k, c)| {
                    k.push(c);
                    k
                }))
            }
            Plan::HavingCountGt { input, min } => {
                let min = *min;
                let last = input.arity() - 1;
                Box::new(self.iter(input, budget)?.filter(move |r| r.get(last) > min))
            }
            Plan::UnionAll { inputs } => {
                let iters: Vec<RowsIter<'a>> = inputs
                    .iter()
                    .map(|p| self.iter(p, budget))
                    .collect::<Result<_, _>>()?;
                Box::new(iters.into_iter().flatten())
            }
            Plan::Distinct { input } => {
                let mut seen: FxHashSet<Row> = FxHashSet::default();
                // Streaming: charge the seen-set growth as rows pass; an
                // overflowing charge latches the budget and the consumer's
                // periodic check surfaces the typed error.
                let b = budget.clone();
                let entry_bytes = std::mem::size_of::<Row>() as u64 + 8;
                Box::new(self.iter(input, budget)?.filter(move |r| {
                    if seen.insert(*r) {
                        let _ = b.charge(entry_bytes);
                        true
                    } else {
                        false
                    }
                }))
            }
        })
    }
}

/// Streaming probe side of the hash join.
struct HashJoinIter<'a> {
    build: Vec<Row>,
    heads: HashMap<u64, u32, BuildHasherDefault<FxHasher>>,
    next: Vec<u32>,
    right: RowsIter<'a>,
    rc: usize,
    /// (current probe row, next build chain position)
    current: Option<(Row, u32)>,
}

impl Iterator for HashJoinIter<'_> {
    type Item = Row;

    fn next(&mut self) -> Option<Row> {
        loop {
            if let Some((probe, chain)) = self.current {
                if chain != u32::MAX {
                    let b = &self.build[chain as usize];
                    self.current = Some((probe, self.next[chain as usize]));
                    return Some(b.concat(&probe));
                }
                self.current = None;
            }
            let probe = self.right.next()?;
            if let Some(&head) = self.heads.get(&probe.get(self.rc)) {
                self.current = Some((probe, head));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swans_plan::algebra::{group_count, join, project, scan_all, scan_po};
    use swans_plan::naive;
    use swans_storage::MachineProfile;

    fn triples() -> Vec<Triple> {
        vec![
            Triple::new(10, 0, 1),
            Triple::new(11, 0, 1),
            Triple::new(12, 0, 4),
            Triple::new(10, 2, 3),
            Triple::new(11, 2, 5),
            Triple::new(13, 2, 3),
        ]
    }

    fn engine(config: &TripleIndexConfig) -> RowEngine {
        let m = StorageManager::new(MachineProfile::B);
        let mut e = RowEngine::new();
        e.load_triple_store(&m, &triples(), config);
        e.load_vertical(&m, &triples());
        e
    }

    fn check(plan: &Plan, e: &RowEngine) {
        let got = naive::normalize(e.execute(plan).expect("plan executes"));
        let want = naive::normalize(naive::execute(plan, &triples()));
        assert_eq!(got, want, "plan {plan:?}");
    }

    #[test]
    fn scans_match_naive_under_both_configs() {
        for config in [TripleIndexConfig::spo(), TripleIndexConfig::pso()] {
            let e = engine(&config);
            check(&scan_all(), &e);
            check(&scan_po(0, 1), &e);
            check(
                &Plan::ScanTriples {
                    s: Some(10),
                    p: None,
                    o: None,
                },
                &e,
            );
            check(
                &Plan::ScanTriples {
                    s: None,
                    p: None,
                    o: Some(3),
                },
                &e,
            );
        }
    }

    #[test]
    fn scan_property_matches_naive() {
        let e = engine(&TripleIndexConfig::pso());
        for (s, o, emit) in [
            (None, None, false),
            (None, None, true),
            (Some(10), None, true),
            (None, Some(1), false),
        ] {
            check(
                &Plan::ScanProperty {
                    property: 0,
                    s,
                    o,
                    emit_property: emit,
                },
                &e,
            );
        }
    }

    #[test]
    fn missing_property_is_empty() {
        let e = engine(&TripleIndexConfig::pso());
        let p = Plan::ScanProperty {
            property: 77,
            s: None,
            o: None,
            emit_property: false,
        };
        assert!(e.execute(&p).expect("empty scan executes").is_empty());
    }

    /// Scans against a layout the engine never loaded return a typed error
    /// instead of aborting the process.
    #[test]
    fn missing_layout_is_an_error_not_a_panic() {
        let m = StorageManager::new(MachineProfile::B);
        let mut triple_only = RowEngine::new();
        triple_only.load_triple_store(&m, &triples(), &TripleIndexConfig::pso());
        let vp_scan = Plan::ScanProperty {
            property: 0,
            s: None,
            o: None,
            emit_property: false,
        };
        assert_eq!(
            triple_only.execute(&vp_scan),
            Err(EngineError::MissingVerticalLayout)
        );

        let mut vertical_only = RowEngine::new();
        vertical_only.load_vertical(&m, &triples());
        assert_eq!(
            vertical_only.execute(&scan_all()),
            Err(EngineError::MissingTripleStore)
        );
        // The error surfaces even when the bad scan is buried in a tree.
        let nested = project(join(vp_scan, scan_all(), 0, 0), vec![0]);
        assert_eq!(
            vertical_only.execute(&nested),
            Err(EngineError::MissingTripleStore)
        );
    }

    /// A structurally malformed plan (out-of-range column reference) is
    /// rejected up front with `InvalidPlan`.
    #[test]
    fn malformed_plan_returns_err() {
        let e = engine(&TripleIndexConfig::pso());
        let bad = project(scan_all(), vec![7]);
        assert!(matches!(e.execute(&bad), Err(EngineError::InvalidPlan(_))));
        let bad_union = Plan::UnionAll { inputs: vec![] };
        assert!(matches!(
            e.execute(&bad_union),
            Err(EngineError::InvalidPlan(_))
        ));
    }

    #[test]
    fn join_pipeline_matches_naive() {
        let e = engine(&TripleIndexConfig::pso());
        let p = group_count(
            project(join(scan_po(0, 1), scan_all(), 0, 0), vec![4]),
            vec![0],
        );
        check(&p, &e);
    }

    #[test]
    fn distinct_union_matches_naive() {
        let e = engine(&TripleIndexConfig::pso());
        let p = Plan::Distinct {
            input: Box::new(Plan::UnionAll {
                inputs: vec![
                    project(scan_po(0, 1), vec![0]),
                    project(scan_all(), vec![0]),
                ],
            }),
        };
        check(&p, &e);
    }

    /// The in-place write path: a delta lands in the clustered trees and
    /// all secondaries of both layouts, deletes-before-inserts, matching
    /// the naive executor over the mutated triple bag.
    #[test]
    fn apply_mutates_both_layouts_in_place() {
        let e_ref = engine(&TripleIndexConfig::pso());
        let mut e = e_ref;
        let mut delta = Delta::new();
        delta
            .delete(Triple::new(11, 0, 1))
            .insert(Triple::new(14, 0, 1))
            .insert(Triple::new(14, 7, 9)); // brand-new property
        let m = StorageManager::new(MachineProfile::B);
        e.apply(&m, &delta).expect("delta applies");

        let mut expect = triples();
        expect.retain(|t| *t != Triple::new(11, 0, 1));
        expect.push(Triple::new(14, 0, 1));
        expect.push(Triple::new(14, 7, 9));

        for plan in [
            scan_all(),
            scan_po(0, 1),
            Plan::ScanProperty {
                property: 7,
                s: None,
                o: None,
                emit_property: true,
            },
            group_count(
                project(join(scan_po(0, 1), scan_all(), 0, 0), vec![4]),
                vec![0],
            ),
        ] {
            let got = naive::normalize(e.execute(&plan).expect("plan executes"));
            let want = naive::normalize(naive::execute(&plan, &expect));
            assert_eq!(got, want, "plan {plan:?}");
        }
        assert_eq!(e.property_table_count(), 3, "property 7 table created");

        // No layout loaded: typed error.
        let mut empty = RowEngine::new();
        assert!(matches!(
            empty.apply(&m, &delta),
            Err(EngineError::Unsupported(_))
        ));
    }

    /// All twelve benchmark queries, both schemes, match the naive
    /// executor — and under both triple index configurations.
    #[test]
    fn benchmark_queries_match_naive() {
        use swans_plan::queries::{build_plan, vocab, QueryContext, QueryId, Scheme};
        let mut ds = swans_rdf::Dataset::new();
        let subj = |i: usize| format!("<s{i}>");
        for i in 0..60 {
            ds.add(
                &subj(i),
                vocab::TYPE,
                if i % 3 == 0 { vocab::TEXT } else { vocab::DATE },
            );
            if i % 2 == 0 {
                ds.add(&subj(i), vocab::LANGUAGE, vocab::FRENCH);
            }
            if i % 5 == 0 {
                ds.add(&subj(i), vocab::ORIGIN, vocab::DLC);
            }
            if i % 4 == 0 {
                ds.add(&subj(i), vocab::RECORDS, &subj((i + 1) % 60));
            }
            if i % 7 == 0 {
                ds.add(&subj(i), vocab::POINT, vocab::END);
                ds.add(&subj(i), vocab::ENCODING, "\"enc\"");
            }
            ds.add(&subj(i), "<title>", &format!("\"t{}\"", i % 6));
        }
        ds.add(vocab::CONFERENCES, "<title>", "\"t1\"");
        ds.add(vocab::CONFERENCES, vocab::TYPE, vocab::TEXT);

        let ctx = QueryContext::from_dataset(&ds, 4);
        for config in [TripleIndexConfig::spo(), TripleIndexConfig::pso()] {
            let m = StorageManager::new(MachineProfile::B);
            let mut e = RowEngine::new();
            e.load_triple_store(&m, &ds.triples, &config);
            e.load_vertical(&m, &ds.triples);
            for q in QueryId::ALL {
                for scheme in [Scheme::TripleStore, Scheme::VerticallyPartitioned] {
                    let plan = build_plan(q, scheme, &ctx);
                    let got = naive::normalize(e.execute(&plan).expect("plan executes"));
                    let want = naive::normalize(naive::execute(&plan, &ds.triples));
                    assert_eq!(
                        got,
                        want,
                        "query {q} / {} / cluster {}",
                        scheme.name(),
                        config.cluster
                    );
                }
            }
        }
    }
}
