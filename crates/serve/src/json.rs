//! The few square inches of JSON the server emits: string escaping and
//! the error envelope. Output only — nothing here parses JSON.

/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslashes, and control characters per RFC 8259).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The `{"error": "..."}` envelope every failure route returns.
pub fn error(msg: &str) -> String {
    format!("{{\"error\":\"{}\"}}", escape(msg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_the_json_metacharacters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(error("bad \"q\""), "{\"error\":\"bad \\\"q\\\"\"}");
    }
}
