#![warn(missing_docs)]

//! # swans-serve
//!
//! A SPARQL-over-HTTP front door for [`swans_core::Database`] — built on
//! nothing but `std`: a `TcpListener`, a **bounded worker pool** fed by a
//! **bounded admission queue**, and a hand-rolled slice of HTTP/1.1
//! (exactly what the four routes below need, no more).
//!
//! The point of the crate is not the HTTP — it is what serving demands
//! of the engine: **every request runs on its own pinned snapshot**
//! ([`Database::session`]), so a burst of concurrent clients reads a
//! consistent version each, never blocks the writer, and never torn-reads
//! a half-applied batch. `POST /update` goes through the same writer path
//! as the embedded API (WAL-acknowledged before visible).
//!
//! ## Resource governance
//!
//! The server refuses to melt down under overload instead of queueing
//! unboundedly:
//!
//! * **Admission control** — accepted connections enter a bounded queue
//!   ([`ServeConfig::queue_depth`]); when it is full the request is
//!   **shed** immediately with `503 Service Unavailable` and a
//!   `Retry-After` header, costing the server microseconds instead of a
//!   thread.
//! * **Deadlines** — every admitted request inherits a deadline from its
//!   admission time ([`ServeConfig::request_timeout`]); queries carry it
//!   into the engine as a [`QueryBudget`] and are cooperatively
//!   cancelled mid-execution when it expires, answering `503` with
//!   `Retry-After` rather than hogging a worker.
//! * **Memory budgets** — [`ServeConfig::query_mem_limit`] caps what a
//!   single query may materialize (hash tables, join results, ...);
//!   exceeding it cancels the query cleanly.
//! * **Slow clients** — sockets get both read *and* write timeouts, so
//!   a client that stops reading its response cannot pin a worker.
//! * **Parse hardening** — request line, header block, and body sizes
//!   are capped (`413`/`400` with a JSON error, never a panic, never an
//!   unbounded buffer).
//!
//! ```no_run
//! use std::sync::Arc;
//! use swans_core::{Database, Layout, StoreConfig};
//! use swans_rdf::Dataset;
//!
//! let mut ds = Dataset::new();
//! ds.add("<s1>", "<type>", "<Text>");
//! let db = Arc::new(Database::open(ds, StoreConfig::column(Layout::VerticallyPartitioned))?);
//! let server = swans_serve::serve(db, "127.0.0.1:0")?;
//! println!("listening on http://{}", server.addr());
//! // curl "http://<addr>/query?q=SELECT%20?s%20WHERE%20%7B%20?s%20<type>%20<Text>%20%7D"
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Routes
//!
//! | Route | Method | Body / params | Returns |
//! |---|---|---|---|
//! | `/query` | GET/POST | `?q=<sparql>` (percent-encoded) or raw body | `{"version","columns","rows","row_count"}` |
//! | `/explain` | GET/POST | same as `/query` | `{"version","plan"}` (annotated + verified text) |
//! | `/stats` | GET | — | `{"version","triples","pending","requests","governance","counters","io"}` |
//! | `/update` | POST | lines `+ <s> <p> <o>` / `- <s> <p> <o>` | `{"inserted","deleted","version"}` |
//!
//! Errors come back as `400 {"error": "..."}`; oversized requests as
//! `413`; unknown routes as `404`; overload and deadline/memory
//! cancellation as `503` with `Retry-After`.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use swans_core::{CancelReason, Database, EngineError, Error, QueryBudget, ResultSet};

mod json;

pub use json::escape as json_escape;

/// Tuning knobs for [`serve_with`]: pool sizing, admission control,
/// timeouts, and request-size caps. Start from [`ServeConfig::default`]
/// and override fields.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads handling requests (the maximum number of requests
    /// in flight). Request handling is dominated by (simulated) I/O
    /// waits, not CPU, so the default oversubscribes the cores:
    /// `4 × available_parallelism`, at least 8 — concurrent scans keep
    /// overlapping their waits even on a single-core host.
    pub workers: usize,
    /// Accepted connections waiting for a worker beyond this are shed
    /// with `503` + `Retry-After` instead of queueing unboundedly.
    pub queue_depth: usize,
    /// Socket read timeout — how long a worker waits for a slow client
    /// to *send* its request.
    pub read_timeout: Duration,
    /// Socket write timeout — how long a worker waits for a slow client
    /// to *drain* its response.
    pub write_timeout: Duration,
    /// End-to-end deadline per request, measured from **admission**
    /// (accept time), queueing included. Queries carry the remainder
    /// into the engine as a [`QueryBudget`] deadline.
    pub request_timeout: Duration,
    /// Value of the `Retry-After` header on shed / cancelled responses.
    pub retry_after_secs: u64,
    /// Maximum request-line length in bytes (method + target + version).
    pub max_request_line: usize,
    /// Maximum total header block size in bytes.
    pub max_header_bytes: usize,
    /// Maximum request body size in bytes.
    pub max_body_bytes: usize,
    /// Per-query memory budget in bytes (`None` = unmetered): what one
    /// query may materialize in join/group tables and results before it
    /// is cancelled with [`CancelReason::MemoryLimit`].
    pub query_mem_limit: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: (std::thread::available_parallelism().map_or(2, std::num::NonZero::get) * 4)
                .max(8),
            queue_depth: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            request_timeout: Duration::from_secs(30),
            retry_after_secs: 1,
            max_request_line: 8 << 10,
            max_header_bytes: 64 << 10,
            max_body_bytes: 16 << 20,
            query_mem_limit: None,
        }
    }
}

/// A running HTTP server: the bound address plus the handle needed to
/// stop it. Dropping the value **without** calling [`Server::shutdown`]
/// leaves the accept and worker threads running for the life of the
/// process.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

struct Shared {
    db: Arc<Database>,
    config: ServeConfig,
    stop: AtomicBool,
    /// Total requests answered (any route, any status), shed included.
    requests: AtomicU64,
    /// Requests currently being handled by a worker.
    active: AtomicU64,
    /// Requests refused at admission with `503` (queue full).
    shed_requests: AtomicU64,
    /// Queries cancelled by deadline, memory limit, or shutdown.
    cancelled_queries: AtomicU64,
    /// High-water mark of any single query's accounted memory.
    peak_mem_bytes: AtomicU64,
    /// Admitted connections waiting for a worker, with admission time.
    queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    queue_cv: Condvar,
}

impl Shared {
    fn lock_queue(&self) -> std::sync::MutexGuard<'_, VecDeque<(TcpStream, Instant)>> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serves
/// `db` with the default [`ServeConfig`] until [`Server::shutdown`].
/// Each read request pins its own snapshot version.
pub fn serve(db: Arc<Database>, addr: &str) -> std::io::Result<Server> {
    serve_with(db, addr, ServeConfig::default())
}

/// [`serve`] with explicit [`ServeConfig`] governance settings.
pub fn serve_with(db: Arc<Database>, addr: &str, config: ServeConfig) -> std::io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let n_workers = config.workers.max(1);
    let shared = Arc::new(Shared {
        db,
        config,
        stop: AtomicBool::new(false),
        requests: AtomicU64::new(0),
        active: AtomicU64::new(0),
        shed_requests: AtomicU64::new(0),
        cancelled_queries: AtomicU64::new(0),
        peak_mem_bytes: AtomicU64::new(0),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
    });
    let workers = (0..n_workers)
        .map(|_| {
            let worker_shared = shared.clone();
            std::thread::spawn(move || worker_loop(&worker_shared))
        })
        .collect();
    let accept_shared = shared.clone();
    let accept = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_shared.stop.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let admitted = Instant::now();
            let shed = {
                let mut q = accept_shared.lock_queue();
                if q.len() >= accept_shared.config.queue_depth {
                    Some(stream)
                } else {
                    q.push_back((stream, admitted));
                    accept_shared.queue_cv.notify_one();
                    None
                }
            };
            if let Some(stream) = shed {
                // Load shedding: answer 503 on a throwaway thread so a
                // slow shed client can never stall the accept loop. The
                // write timeout bounds the thread's lifetime.
                accept_shared.shed_requests.fetch_add(1, Ordering::AcqRel);
                accept_shared.requests.fetch_add(1, Ordering::AcqRel);
                let retry = accept_shared.config.retry_after_secs;
                let write_timeout = accept_shared.config.write_timeout;
                std::thread::spawn(move || {
                    let mut stream = stream;
                    let _ = stream.set_write_timeout(Some(write_timeout));
                    let _ = respond_with(
                        &mut stream,
                        "503 Service Unavailable",
                        &format!("Retry-After: {retry}\r\n"),
                        &json::error("server overloaded, retry later"),
                    );
                });
            }
        }
    });
    Ok(Server {
        addr,
        shared,
        accept: Some(accept),
        workers,
    })
}

/// One worker: pops admitted connections until shutdown.
fn worker_loop(shared: &Shared) {
    loop {
        let conn = {
            let mut q = shared.lock_queue();
            loop {
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
                if let Some(conn) = q.pop_front() {
                    break conn;
                }
                q = shared.queue_cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        shared.active.fetch_add(1, Ordering::AcqRel);
        let (stream, admitted) = conn;
        let _ = handle_connection(shared, stream, admitted);
        shared.active.fetch_sub(1, Ordering::AcqRel);
    }
}

impl Server {
    /// The bound address (resolves the ephemeral port of `":0"` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total requests answered so far (shed requests included).
    pub fn requests(&self) -> u64 {
        self.shared.requests.load(Ordering::Acquire)
    }

    /// Requests refused at admission with `503` because the queue was
    /// full.
    pub fn shed_requests(&self) -> u64 {
        self.shared.shed_requests.load(Ordering::Acquire)
    }

    /// Queries cancelled by deadline, memory limit, or shutdown.
    pub fn cancelled_queries(&self) -> u64 {
        self.shared.cancelled_queries.load(Ordering::Acquire)
    }

    /// Stops accepting, wakes the workers, waits for in-flight requests
    /// to drain (bounded at five seconds), and joins every thread.
    /// Connections still queued but never picked up are closed unserved.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.shared.queue_cv.notify_all();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.shared.active.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

/// One parsed request: the slice of HTTP/1.1 the routes need.
struct Request {
    method: String,
    /// Path without the query string.
    path: String,
    /// Decoded `q=` parameter, if present.
    q: Option<String>,
    body: Vec<u8>,
}

/// A request refused at the parse layer, with the HTTP status it maps
/// to: `400` for malformed input, `413` for anything over the
/// [`ServeConfig`] size caps.
#[derive(Debug)]
enum ParseError {
    /// Malformed request → `400 Bad Request`.
    Bad(String),
    /// Over a size cap → `413 Payload Too Large`.
    TooLarge(String),
    /// Socket-level failure (client went away, timeout): no response
    /// can usefully be sent.
    Io(std::io::Error),
}

impl ParseError {
    fn into_response(self) -> Result<(&'static str, String), std::io::Error> {
        match self {
            ParseError::Bad(msg) => Ok(("400 Bad Request", json::error(&msg))),
            ParseError::TooLarge(msg) => Ok(("413 Payload Too Large", json::error(&msg))),
            ParseError::Io(e) => Err(e),
        }
    }
}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

fn bad_request(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

/// Reads one line of at most `max` bytes. `Ok(None)` means clean EOF
/// before any byte; a line that hits the cap without a newline is a
/// [`ParseError::TooLarge`].
fn read_line_limited<R: BufRead>(
    reader: &mut R,
    max: usize,
    what: &str,
) -> Result<Option<String>, ParseError> {
    let mut line = String::new();
    let n = (&mut *reader)
        .take(max as u64 + 1)
        .read_line(&mut line)
        .map_err(|e| {
            if e.kind() == std::io::ErrorKind::InvalidData {
                ParseError::Bad(format!("{what} is not UTF-8"))
            } else {
                ParseError::Io(e)
            }
        })?;
    if n == 0 {
        return Ok(None);
    }
    if n > max && !line.ends_with('\n') {
        return Err(ParseError::TooLarge(format!("{what} over {max} bytes")));
    }
    Ok(Some(line))
}

/// Parses one HTTP request under the [`ServeConfig`] size caps. Written
/// against [`BufRead`] so the hardening tests can drive it with raw byte
/// slices.
fn read_request<R: BufRead>(
    reader: &mut R,
    config: &ServeConfig,
) -> Result<Option<Request>, ParseError> {
    let Some(line) = read_line_limited(reader, config.max_request_line, "request line")? else {
        return Ok(None); // connection closed before a request
    };
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ParseError::Bad("empty request line".into()))?;
    let target = parts
        .next()
        .ok_or_else(|| ParseError::Bad("missing target".into()))?;
    let (path, query_string) = match target.split_once('?') {
        Some((p, qs)) => (p, Some(qs)),
        None => (target, None),
    };
    let q = query_string.and_then(|qs| {
        qs.split('&')
            .find_map(|kv| kv.strip_prefix("q="))
            .map(percent_decode)
    });
    let mut content_length = 0usize;
    let mut header_bytes = 0usize;
    loop {
        let remaining = config.max_header_bytes.saturating_sub(header_bytes);
        let Some(header) = read_line_limited(reader, remaining.max(1), "header block")? else {
            return Err(ParseError::Bad("connection closed mid-headers".into()));
        };
        header_bytes += header.len();
        if header_bytes > config.max_header_bytes {
            return Err(ParseError::TooLarge(format!(
                "header block over {} bytes",
                config.max_header_bytes
            )));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ParseError::Bad("bad content-length".into()))?;
            }
        }
    }
    // A front door for test traffic, not the open internet: still, never
    // let one request buffer unbounded memory.
    if content_length > config.max_body_bytes {
        return Err(ParseError::TooLarge(format!(
            "body over {} bytes",
            config.max_body_bytes
        )));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request {
        method: method.to_string(),
        path: path.to_string(),
        q,
        body,
    }))
}

/// Decodes `%XX` escapes and `+`-as-space (the form/query encoding curl
/// and browsers produce).
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok());
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Writes a response with `extra` headers (each `\r\n`-terminated)
/// spliced into the head.
fn respond_with(
    stream: &mut TcpStream,
    status: &str,
    extra: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: application/json\r\n{extra}Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn handle_connection(
    shared: &Shared,
    mut stream: TcpStream,
    admitted: Instant,
) -> std::io::Result<()> {
    let config = &shared.config;
    stream.set_read_timeout(Some(config.read_timeout))?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let parsed = match read_request(&mut reader, config) {
        Ok(None) => return Ok(()), // closed before a request: not counted
        Ok(Some(req)) => Ok(req),
        Err(e) => Err(e),
    };
    shared.requests.fetch_add(1, Ordering::AcqRel);
    let (status, extra, body) = match parsed {
        // On a socket-level failure there is nobody left to answer.
        Err(e) => {
            let (status, body) = e.into_response()?;
            (status, String::new(), body)
        }
        Ok(req) => {
            let deadline = admitted + config.request_timeout;
            let (status, body) = route(shared, &req, deadline);
            let extra = if status.starts_with("503") {
                format!("Retry-After: {}\r\n", config.retry_after_secs)
            } else {
                String::new()
            };
            (status, extra, body)
        }
    };
    respond_with(&mut stream, status, &extra, &body)
}

fn route(shared: &Shared, req: &Request, deadline: Instant) -> (&'static str, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET" | "POST", "/query") => match sparql_of(req) {
            Ok(sparql) => run_query(shared, &sparql, deadline),
            Err(msg) => ("400 Bad Request", json::error(msg)),
        },
        ("GET" | "POST", "/explain") => match sparql_of(req) {
            Ok(sparql) => run_explain(&shared.db, &sparql),
            Err(msg) => ("400 Bad Request", json::error(msg)),
        },
        ("GET", "/stats") => ("200 OK", stats_json(shared)),
        ("POST", "/update") => run_update(&shared.db, &req.body),
        _ => ("404 Not Found", json::error("no such route")),
    }
}

fn sparql_of(req: &Request) -> Result<String, &'static str> {
    if let Some(q) = &req.q {
        return Ok(q.clone());
    }
    if !req.body.is_empty() {
        return String::from_utf8(req.body.clone()).map_err(|_| "body is not UTF-8");
    }
    Err("missing query: pass ?q=<sparql> or a request body")
}

/// The per-request [`QueryBudget`]: the admission deadline plus the
/// configured memory limit.
fn request_budget(config: &ServeConfig, deadline: Instant) -> QueryBudget {
    let mut budget = QueryBudget::unlimited().with_deadline(deadline);
    if let Some(limit) = config.query_mem_limit {
        budget = budget.with_mem_limit(limit);
    }
    budget
}

/// Executes on a pinned per-request session when the engine supports
/// snapshot forks; falls back to the database's writer-lock read path
/// otherwise. Either way the reported `version` is the one answered
/// from, and the request's budget (deadline + memory limit) rides along:
/// a cancelled query answers `503` so the client knows to back off.
fn run_query(shared: &Shared, sparql: &str, deadline: Instant) -> (&'static str, String) {
    let db = &shared.db;
    let budget = request_budget(&shared.config, deadline);
    let outcome = match db.session() {
        Ok(session) => session
            .query_budgeted(sparql, &budget)
            .map(|r| (session.version(), r)),
        Err(_) => db
            .query_budgeted(sparql, &budget)
            .map(|r| (db.snapshot().version(), r)),
    };
    shared
        .peak_mem_bytes
        .fetch_max(budget.peak_mem_bytes(), Ordering::AcqRel);
    match outcome {
        Ok((version, results)) => ("200 OK", results_json(version, &results)),
        Err(Error::Engine(EngineError::Cancelled { reason, partial })) => {
            shared.cancelled_queries.fetch_add(1, Ordering::AcqRel);
            let why = match reason {
                CancelReason::Timeout => "query deadline exceeded",
                CancelReason::MemoryLimit => "query memory limit exceeded",
                CancelReason::Shutdown => "server shutting down",
            };
            (
                "503 Service Unavailable",
                format!(
                    "{{\"error\":\"{}\",\"elapsed_ms\":{},\"peak_mem_bytes\":{}}}",
                    json::escape(why),
                    partial.elapsed_ms,
                    partial.peak_mem_bytes,
                ),
            )
        }
        Err(e) => ("400 Bad Request", json::error(&e.to_string())),
    }
}

fn run_explain(db: &Database, sparql: &str) -> (&'static str, String) {
    let version = db.snapshot().version();
    match db.explain_text(sparql) {
        Ok(plan) => (
            "200 OK",
            format!(
                "{{\"version\":{version},\"plan\":\"{}\"}}",
                json::escape(&plan)
            ),
        ),
        Err(e) => ("400 Bad Request", json::error(&e.to_string())),
    }
}

fn results_json(version: u64, results: &ResultSet) -> String {
    let mut out = String::with_capacity(256);
    out.push_str(&format!("{{\"version\":{version},\"columns\":["));
    for (i, c) in results.columns().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\"", json::escape(c)));
    }
    out.push_str("],\"rows\":[");
    for (i, row) in results.decoded().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, term) in row.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", json::escape(term)));
        }
        out.push(']');
    }
    out.push_str(&format!("],\"row_count\":{}}}", results.len()));
    out
}

fn stats_json(shared: &Shared) -> String {
    let snap = shared.db.snapshot();
    let io = shared.db.storage().stats();
    let counters = match shared.db.session() {
        Ok(session) => session
            .stat_counters()
            .iter()
            .map(|(name, v)| format!("\"{name}\":{v}"))
            .collect::<Vec<_>>()
            .join(","),
        Err(_) => String::new(),
    };
    let queue_depth = shared.lock_queue().len();
    format!(
        "{{\"version\":{},\"triples\":{},\"pending\":{},\"requests\":{},\
         \"governance\":{{\"shed_requests\":{},\"cancelled_queries\":{},\"peak_mem_bytes\":{},\
         \"queue_depth\":{queue_depth},\"queue_capacity\":{},\"workers\":{},\"active\":{}}},\
         \"counters\":{{{counters}}},\
         \"io\":{{\"bytes_read\":{},\"read_calls\":{},\"seeks\":{},\"bytes_written\":{},\
         \"syncs\":{},\"bytes_synced\":{},\"io_seconds\":{}}}}}",
        snap.version(),
        snap.dataset().len(),
        snap.pending_delta(),
        shared.requests.load(Ordering::Acquire),
        shared.shed_requests.load(Ordering::Acquire),
        shared.cancelled_queries.load(Ordering::Acquire),
        shared.peak_mem_bytes.load(Ordering::Acquire),
        shared.config.queue_depth,
        shared.config.workers.max(1),
        shared.active.load(Ordering::Acquire),
        io.bytes_read,
        io.read_calls,
        io.seeks,
        io.bytes_written,
        io.syncs,
        io.bytes_synced,
        io.io_seconds,
    )
}

/// One `(subject, predicate, object)` term triple from the update body.
type TermTriple = [String; 3];

/// Parses the update mini-language: one mutation per line, `+` inserts,
/// `-` deletes, terms whitespace-separated with the object extending to
/// the end of the line (so quoted literals may contain spaces). Blank
/// lines and `#` comments are skipped.
fn parse_updates(body: &[u8]) -> Result<(Vec<TermTriple>, Vec<TermTriple>), String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let mut inserts = Vec::new();
    let mut deletes = Vec::new();
    for (n, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (op, rest) = line.split_at(1);
        let rest = rest.trim_start();
        let mut it = rest.splitn(3, char::is_whitespace);
        let (s, p, o) = match (it.next(), it.next(), it.next()) {
            (Some(s), Some(p), Some(o)) if !o.trim().is_empty() => (s, p, o.trim()),
            _ => return Err(format!("line {}: expected `+|- <s> <p> <o>`", n + 1)),
        };
        let triple = [s.to_string(), p.to_string(), o.to_string()];
        match op {
            "+" => inserts.push(triple),
            "-" => deletes.push(triple),
            other => return Err(format!("line {}: unknown op {other:?}", n + 1)),
        }
    }
    Ok((inserts, deletes))
}

fn run_update(db: &Database, body: &[u8]) -> (&'static str, String) {
    let (inserts, deletes) = match parse_updates(body) {
        Ok(parsed) => parsed,
        Err(msg) => return ("400 Bad Request", json::error(&msg)),
    };
    let applied = db
        .insert(inserts.iter().map(|[s, p, o]| (&**s, &**p, &**o)))
        .and_then(|ins| {
            let del = db.delete(deletes.iter().map(|[s, p, o]| (&**s, &**p, &**o)))?;
            Ok((ins, del))
        });
    match applied {
        Ok((inserted, deleted)) => (
            "200 OK",
            format!(
                "{{\"inserted\":{inserted},\"deleted\":{deleted},\"version\":{}}}",
                db.snapshot().version()
            ),
        ),
        Err(e) => ("400 Bad Request", json::error(&e.to_string())),
    }
}

/// A minimal blocking HTTP client for tests and benchmarks: sends one
/// request, returns `(status_code, body)` with a 30-second read timeout.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let (status, _, body) = http_request_full(addr, method, target, body, Duration::from_secs(30))?;
    Ok((status, body))
}

/// A decoded HTTP response as [`http_request_full`] returns it: status
/// code, headers (lower-cased names), body.
pub type HttpResponse = (u16, Vec<(String, String)>, String);

/// [`http_request`] with a caller-chosen read timeout, also returning
/// the response headers (lower-cased names) so tests can assert on
/// `retry-after` and friends.
pub fn http_request_full(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &str,
    read_timeout: Duration,
) -> std::io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(read_timeout))?;
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: swans\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad_request("malformed status line"))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((status, headers, String::from_utf8_lossy(&body).into_owned()))
}

/// Percent-encodes a SPARQL string for use in a `?q=` parameter.
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len() * 3);
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char);
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_round_trip() {
        let q = "SELECT ?s WHERE { ?s <type> \"a b\" }";
        assert_eq!(percent_decode(&percent_encode(q)), q);
        assert_eq!(percent_decode("a+b%20c"), "a b c");
        assert_eq!(percent_decode("100%"), "100%", "dangling escape is literal");
        assert_eq!(percent_decode("%zz"), "%zz", "bad hex is literal");
    }

    #[test]
    fn update_language_parses() {
        let body = b"# a comment\n+ <s> <p> \"a literal with spaces\"\n\n- <s2> <p2> <o2>\n";
        let (ins, del) = parse_updates(body).expect("parses");
        assert_eq!(
            ins,
            vec![[
                "<s>".to_string(),
                "<p>".to_string(),
                "\"a literal with spaces\"".to_string()
            ]]
        );
        assert_eq!(
            del,
            vec![["<s2>".to_string(), "<p2>".to_string(), "<o2>".to_string()]]
        );
        assert!(parse_updates(b"* <s> <p> <o>").is_err());
        assert!(parse_updates(b"+ <s> <p>").is_err());
    }

    fn parse(bytes: &[u8], config: &ServeConfig) -> Result<Option<Request>, ParseError> {
        read_request(&mut std::io::Cursor::new(bytes), config)
    }

    #[test]
    fn parse_happy_path() {
        let config = ServeConfig::default();
        let req = parse(b"GET /query?q=SELECT HTTP/1.1\r\nHost: x\r\n\r\n", &config)
            .expect("parses")
            .expect("a request");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/query");
        assert_eq!(req.q.as_deref(), Some("SELECT"));
        let req = parse(
            b"POST /update HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody",
            &config,
        )
        .expect("parses")
        .expect("a request");
        assert_eq!(req.body, b"body");
    }

    /// The hardening sweep: every malformed / oversized / truncated /
    /// binary-garbage request must come back as a typed `400`/`413` (or
    /// clean EOF), never a panic and never an unbounded buffer.
    #[test]
    fn parse_rejects_hostile_input() {
        let config = ServeConfig {
            max_request_line: 64,
            max_header_bytes: 128,
            max_body_bytes: 256,
            ..ServeConfig::default()
        };
        let too_large: &[&[u8]] = &[
            // Request line over the cap, with and without a newline ever
            // arriving.
            &[b'G'; 1000],
            b"GET /aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa HTTP/1.1\r\n\r\n",
            // Unbounded header block.
            b"GET / HTTP/1.1\r\nA: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\
              aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n\r\n",
            // Body over the cap (declared; never buffered).
            b"POST / HTTP/1.1\r\nContent-Length: 100000000\r\n\r\n",
        ];
        for bytes in too_large {
            match parse(bytes, &config) {
                Err(ParseError::TooLarge(_)) => {}
                other => panic!(
                    "expected TooLarge for {:?}..., got {}",
                    &bytes[..bytes.len().min(24)],
                    match other {
                        Ok(_) => "Ok".to_string(),
                        Err(ParseError::Bad(m)) => format!("Bad({m})"),
                        Err(ParseError::Io(e)) => format!("Io({e})"),
                        Err(ParseError::TooLarge(_)) => unreachable!(),
                    }
                ),
            }
        }
        let bad: &[&[u8]] = &[
            b"\r\n",
            b"GET\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
            b"GET / HTTP/1.1\r\nHost: x", // closed mid-headers
            b"\xff\xfe\xfd\r\n\r\n",      // not UTF-8
        ];
        for bytes in bad {
            assert!(
                matches!(parse(bytes, &config), Err(ParseError::Bad(_))),
                "expected Bad for {bytes:?}"
            );
        }
        // Truncated bodies surface as I/O errors (the socket died), and
        // empty input is a clean EOF, not an error.
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc", &config),
            Err(ParseError::Io(_))
        ));
        assert!(matches!(parse(b"", &config), Ok(None)));
    }
}
