#![warn(missing_docs)]

//! # swans-serve
//!
//! A SPARQL-over-HTTP front door for [`swans_core::Database`] — built on
//! nothing but `std`: a `TcpListener`, one thread per connection, and a
//! hand-rolled slice of HTTP/1.1 (exactly what the four routes below
//! need, no more).
//!
//! The point of the crate is not the HTTP — it is what serving demands
//! of the engine: **every request runs on its own pinned snapshot**
//! ([`Database::session`]), so a burst of concurrent clients reads a
//! consistent version each, never blocks the writer, and never torn-reads
//! a half-applied batch. `POST /update` goes through the same writer path
//! as the embedded API (WAL-acknowledged before visible).
//!
//! ```no_run
//! use std::sync::Arc;
//! use swans_core::{Database, Layout, StoreConfig};
//! use swans_rdf::Dataset;
//!
//! let mut ds = Dataset::new();
//! ds.add("<s1>", "<type>", "<Text>");
//! let db = Arc::new(Database::open(ds, StoreConfig::column(Layout::VerticallyPartitioned))?);
//! let server = swans_serve::serve(db, "127.0.0.1:0")?;
//! println!("listening on http://{}", server.addr());
//! // curl "http://<addr>/query?q=SELECT%20?s%20WHERE%20%7B%20?s%20<type>%20<Text>%20%7D"
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Routes
//!
//! | Route | Method | Body / params | Returns |
//! |---|---|---|---|
//! | `/query` | GET/POST | `?q=<sparql>` (percent-encoded) or raw body | `{"version","columns","rows","row_count"}` |
//! | `/explain` | GET/POST | same as `/query` | `{"version","plan"}` (annotated + verified text) |
//! | `/stats` | GET | — | `{"version","triples","pending","requests","counters","io"}` |
//! | `/update` | POST | lines `+ <s> <p> <o>` / `- <s> <p> <o>` | `{"inserted","deleted","version"}` |
//!
//! Errors come back as `400 {"error": "..."}`; unknown routes as `404`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use swans_core::{Database, ResultSet};

mod json;

pub use json::escape as json_escape;

/// A running HTTP server: the bound address plus the handle needed to
/// stop it. Dropping the value **without** calling [`Server::shutdown`]
/// leaves the accept thread running for the life of the process.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

struct Shared {
    db: Arc<Database>,
    stop: AtomicBool,
    /// Total requests answered (any route, any status).
    requests: AtomicU64,
    /// Connections currently being handled.
    active: AtomicU64,
}

/// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serves
/// `db` until [`Server::shutdown`]. One thread per connection; each
/// read request pins its own snapshot version.
pub fn serve(db: Arc<Database>, addr: &str) -> std::io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        db,
        stop: AtomicBool::new(false),
        requests: AtomicU64::new(0),
        active: AtomicU64::new(0),
    });
    let accept_shared = shared.clone();
    let accept = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_shared.stop.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let conn_shared = accept_shared.clone();
            conn_shared.active.fetch_add(1, Ordering::AcqRel);
            std::thread::spawn(move || {
                let _ = handle_connection(&conn_shared, stream);
                conn_shared.active.fetch_sub(1, Ordering::AcqRel);
            });
        }
    });
    Ok(Server {
        addr,
        shared,
        accept: Some(accept),
    })
}

impl Server {
    /// The bound address (resolves the ephemeral port of `":0"` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total requests answered so far.
    pub fn requests(&self) -> u64 {
        self.shared.requests.load(Ordering::Acquire)
    }

    /// Stops accepting, waits for in-flight connections to drain (bounded
    /// at five seconds), and joins the accept thread.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while self.shared.active.load(Ordering::Acquire) > 0 && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

/// One parsed request: the slice of HTTP/1.1 the routes need.
struct Request {
    method: String,
    /// Path without the query string.
    path: String,
    /// Decoded `q=` parameter, if present.
    q: Option<String>,
    body: Vec<u8>,
}

fn bad_request(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

fn read_request(reader: &mut BufReader<TcpStream>) -> std::io::Result<Option<Request>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None); // connection closed before a request
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad_request("empty request line"))?;
    let target = parts.next().ok_or_else(|| bad_request("missing target"))?;
    let (path, query_string) = match target.split_once('?') {
        Some((p, qs)) => (p, Some(qs)),
        None => (target, None),
    };
    let q = query_string.and_then(|qs| {
        qs.split('&')
            .find_map(|kv| kv.strip_prefix("q="))
            .map(percent_decode)
    });
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(bad_request("connection closed mid-headers"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad_request("bad content-length"))?;
            }
        }
    }
    // A front door for test traffic, not the open internet: still, never
    // let one request buffer unbounded memory.
    if content_length > 16 << 20 {
        return Err(bad_request("body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request {
        method: method.to_string(),
        path: path.to_string(),
        q,
        body,
    }))
}

/// Decodes `%XX` escapes and `+`-as-space (the form/query encoding curl
/// and browsers produce).
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok());
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn respond(stream: &mut TcpStream, status: &str, body: &str) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let Some(request) = read_request(&mut reader).transpose() else {
        return Ok(());
    };
    shared.requests.fetch_add(1, Ordering::AcqRel);
    let (status, body) = match request {
        Err(e) => ("400 Bad Request", json::error(&e.to_string())),
        Ok(req) => route(shared, &req),
    };
    respond(&mut stream, status, &body)
}

fn route(shared: &Shared, req: &Request) -> (&'static str, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET" | "POST", "/query") => match sparql_of(req) {
            Ok(sparql) => run_query(&shared.db, &sparql),
            Err(msg) => ("400 Bad Request", json::error(msg)),
        },
        ("GET" | "POST", "/explain") => match sparql_of(req) {
            Ok(sparql) => run_explain(&shared.db, &sparql),
            Err(msg) => ("400 Bad Request", json::error(msg)),
        },
        ("GET", "/stats") => ("200 OK", stats_json(shared)),
        ("POST", "/update") => run_update(&shared.db, &req.body),
        _ => ("404 Not Found", json::error("no such route")),
    }
}

fn sparql_of(req: &Request) -> Result<String, &'static str> {
    if let Some(q) = &req.q {
        return Ok(q.clone());
    }
    if !req.body.is_empty() {
        return String::from_utf8(req.body.clone()).map_err(|_| "body is not UTF-8");
    }
    Err("missing query: pass ?q=<sparql> or a request body")
}

/// Executes on a pinned per-request session when the engine supports
/// snapshot forks; falls back to the database's writer-lock read path
/// otherwise. Either way the reported `version` is the one answered from.
fn run_query(db: &Database, sparql: &str) -> (&'static str, String) {
    let outcome = match db.session() {
        Ok(session) => session.query(sparql).map(|r| (session.version(), r)),
        Err(_) => db.query(sparql).map(|r| (db.snapshot().version(), r)),
    };
    match outcome {
        Ok((version, results)) => ("200 OK", results_json(version, &results)),
        Err(e) => ("400 Bad Request", json::error(&e.to_string())),
    }
}

fn run_explain(db: &Database, sparql: &str) -> (&'static str, String) {
    let version = db.snapshot().version();
    match db.explain_text(sparql) {
        Ok(plan) => (
            "200 OK",
            format!(
                "{{\"version\":{version},\"plan\":\"{}\"}}",
                json::escape(&plan)
            ),
        ),
        Err(e) => ("400 Bad Request", json::error(&e.to_string())),
    }
}

fn results_json(version: u64, results: &ResultSet) -> String {
    let mut out = String::with_capacity(256);
    out.push_str(&format!("{{\"version\":{version},\"columns\":["));
    for (i, c) in results.columns().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\"", json::escape(c)));
    }
    out.push_str("],\"rows\":[");
    for (i, row) in results.decoded().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, term) in row.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", json::escape(term)));
        }
        out.push(']');
    }
    out.push_str(&format!("],\"row_count\":{}}}", results.len()));
    out
}

fn stats_json(shared: &Shared) -> String {
    let snap = shared.db.snapshot();
    let io = shared.db.storage().stats();
    let counters = match shared.db.session() {
        Ok(session) => session
            .stat_counters()
            .iter()
            .map(|(name, v)| format!("\"{name}\":{v}"))
            .collect::<Vec<_>>()
            .join(","),
        Err(_) => String::new(),
    };
    format!(
        "{{\"version\":{},\"triples\":{},\"pending\":{},\"requests\":{},\"counters\":{{{counters}}},\
         \"io\":{{\"bytes_read\":{},\"read_calls\":{},\"seeks\":{},\"bytes_written\":{},\
         \"syncs\":{},\"bytes_synced\":{},\"io_seconds\":{}}}}}",
        snap.version(),
        snap.dataset().len(),
        snap.pending_delta(),
        shared.requests.load(Ordering::Acquire),
        io.bytes_read,
        io.read_calls,
        io.seeks,
        io.bytes_written,
        io.syncs,
        io.bytes_synced,
        io.io_seconds,
    )
}

/// One `(subject, predicate, object)` term triple from the update body.
type TermTriple = [String; 3];

/// Parses the update mini-language: one mutation per line, `+` inserts,
/// `-` deletes, terms whitespace-separated with the object extending to
/// the end of the line (so quoted literals may contain spaces). Blank
/// lines and `#` comments are skipped.
fn parse_updates(body: &[u8]) -> Result<(Vec<TermTriple>, Vec<TermTriple>), String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let mut inserts = Vec::new();
    let mut deletes = Vec::new();
    for (n, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (op, rest) = line.split_at(1);
        let rest = rest.trim_start();
        let mut it = rest.splitn(3, char::is_whitespace);
        let (s, p, o) = match (it.next(), it.next(), it.next()) {
            (Some(s), Some(p), Some(o)) if !o.trim().is_empty() => (s, p, o.trim()),
            _ => return Err(format!("line {}: expected `+|- <s> <p> <o>`", n + 1)),
        };
        let triple = [s.to_string(), p.to_string(), o.to_string()];
        match op {
            "+" => inserts.push(triple),
            "-" => deletes.push(triple),
            other => return Err(format!("line {}: unknown op {other:?}", n + 1)),
        }
    }
    Ok((inserts, deletes))
}

fn run_update(db: &Database, body: &[u8]) -> (&'static str, String) {
    let (inserts, deletes) = match parse_updates(body) {
        Ok(parsed) => parsed,
        Err(msg) => return ("400 Bad Request", json::error(&msg)),
    };
    let applied = db
        .insert(inserts.iter().map(|[s, p, o]| (&**s, &**p, &**o)))
        .and_then(|ins| {
            let del = db.delete(deletes.iter().map(|[s, p, o]| (&**s, &**p, &**o)))?;
            Ok((ins, del))
        });
    match applied {
        Ok((inserted, deleted)) => (
            "200 OK",
            format!(
                "{{\"inserted\":{inserted},\"deleted\":{deleted},\"version\":{}}}",
                db.snapshot().version()
            ),
        ),
        Err(e) => ("400 Bad Request", json::error(&e.to_string())),
    }
}

/// A minimal blocking HTTP client for tests and benchmarks: sends one
/// request, returns `(status_code, body)`.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: swans\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad_request("malformed status line"))?;
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((status, String::from_utf8_lossy(&body).into_owned()))
}

/// Percent-encodes a SPARQL string for use in a `?q=` parameter.
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len() * 3);
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char);
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_round_trip() {
        let q = "SELECT ?s WHERE { ?s <type> \"a b\" }";
        assert_eq!(percent_decode(&percent_encode(q)), q);
        assert_eq!(percent_decode("a+b%20c"), "a b c");
        assert_eq!(percent_decode("100%"), "100%", "dangling escape is literal");
        assert_eq!(percent_decode("%zz"), "%zz", "bad hex is literal");
    }

    #[test]
    fn update_language_parses() {
        let body = b"# a comment\n+ <s> <p> \"a literal with spaces\"\n\n- <s2> <p2> <o2>\n";
        let (ins, del) = parse_updates(body).expect("parses");
        assert_eq!(
            ins,
            vec![[
                "<s>".to_string(),
                "<p>".to_string(),
                "\"a literal with spaces\"".to_string()
            ]]
        );
        assert_eq!(
            del,
            vec![["<s2>".to_string(), "<p2>".to_string(), "<o2>".to_string()]]
        );
        assert!(parse_updates(b"* <s> <p> <o>").is_err());
        assert!(parse_updates(b"+ <s> <p>").is_err());
    }
}
