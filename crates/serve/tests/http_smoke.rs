//! HTTP smoke test: a real server on an ephemeral port, 32 clients
//! hammering it in parallel, and every concurrent answer diffed against
//! the sequential answer to the same request. Also exercises `/update`,
//! `/explain`, `/stats`, and the error paths.

use std::sync::Arc;

use swans_core::{Database, Layout, StoreConfig};
use swans_datagen::{generate, BartonConfig};
use swans_serve::{http_request, percent_encode, serve};

fn db() -> Arc<Database> {
    let ds = generate(&BartonConfig {
        scale: 0.0003,
        seed: 77,
        n_properties: 30,
    });
    Arc::new(Database::open(ds, StoreConfig::column(Layout::VerticallyPartitioned)).expect("opens"))
}

const QUERIES: &[&str] = &[
    "SELECT ?s ?o WHERE { ?s <title> ?o }",
    "SELECT ?t (COUNT(*) AS ?n) WHERE { ?s <type> ?t } GROUP BY ?t",
    "SELECT ?s WHERE { ?s <type> <Text> }",
    "SELECT ?s ?o WHERE { ?s <type> <Text> . ?s <language> ?o }",
];

#[test]
fn thirty_two_parallel_clients_match_sequential() {
    let server = serve(db(), "127.0.0.1:0").expect("binds");
    let addr = server.addr();

    // Sequential reference: one answer per query.
    let reference: Vec<(u16, String)> = QUERIES
        .iter()
        .map(|q| {
            http_request(addr, "GET", &format!("/query?q={}", percent_encode(q)), "")
                .expect("sequential request")
        })
        .collect();
    for (status, body) in &reference {
        assert_eq!(*status, 200, "{body}");
        assert!(body.contains("\"rows\":["), "{body}");
    }

    // 32 clients, each issuing every query, all at once — each client
    // starts at a different query so concurrent requests overlap on
    // different routes.
    let answers: Vec<Vec<(usize, u16, String)>> = std::thread::scope(|scope| {
        (0..32usize)
            .map(|client| {
                scope.spawn(move || {
                    (0..QUERIES.len())
                        .map(|i| {
                            let qi = (i + client) % QUERIES.len();
                            let (status, body) = http_request(
                                addr,
                                "GET",
                                &format!("/query?q={}", percent_encode(QUERIES[qi])),
                                "",
                            )
                            .expect("parallel request");
                            (qi, status, body)
                        })
                        .collect()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    for client in &answers {
        for (qi, status, body) in client {
            let (want_status, want_body) = &reference[*qi];
            assert_eq!(status, want_status);
            assert_eq!(
                body, want_body,
                "a concurrent client saw a different answer"
            );
        }
    }

    assert!(server.requests() >= 4 + 32 * 4);
    server.shutdown();
}

#[test]
fn update_route_round_trips_and_bumps_the_version() {
    let server = serve(db(), "127.0.0.1:0").expect("binds");
    let addr = server.addr();

    let (status, stats) = http_request(addr, "GET", "/stats", "").expect("stats");
    assert_eq!(status, 200, "{stats}");
    assert!(stats.contains("\"version\":1"), "{stats}");
    assert!(stats.contains("\"io\":{"), "{stats}");

    let body = "+ <smoke-s> <smoke-p> \"smoke o\"\n+ <smoke-s2> <smoke-p> <o2>\n- <smoke-s2> <smoke-p> <o2>\n";
    let (status, reply) = http_request(addr, "POST", "/update", body).expect("update");
    assert_eq!(status, 200, "{reply}");
    assert!(reply.contains("\"inserted\":2"), "{reply}");
    assert!(reply.contains("\"deleted\":1"), "{reply}");

    let q = "SELECT ?o WHERE { <smoke-s> <smoke-p> ?o }";
    let (status, reply) =
        http_request(addr, "GET", &format!("/query?q={}", percent_encode(q)), "").expect("query");
    assert_eq!(status, 200);
    assert!(reply.contains("\\\"smoke o\\\""), "{reply}");
    assert!(
        !reply.contains("\"version\":1,"),
        "post-update reads run on a newer version: {reply}"
    );

    // POST /query with the SPARQL as the body (no ?q=).
    let (status, reply) = http_request(addr, "POST", "/query", q).expect("post query");
    assert_eq!(status, 200);
    assert!(reply.contains("\"row_count\":1"), "{reply}");

    let (status, reply) = http_request(
        addr,
        "GET",
        &format!("/explain?q={}", percent_encode(q)),
        "",
    )
    .expect("explain");
    assert_eq!(status, 200);
    assert!(reply.contains("verified:"), "{reply}");

    // Error paths: bad SPARQL, missing q, unknown route, bad update line.
    let (status, reply) = http_request(addr, "GET", "/query?q=FROB", "").expect("bad sparql");
    assert_eq!(status, 400);
    assert!(reply.contains("\"error\""), "{reply}");
    let (status, _) = http_request(addr, "GET", "/query", "").expect("missing q");
    assert_eq!(status, 400);
    let (status, _) = http_request(addr, "GET", "/nope", "").expect("unknown route");
    assert_eq!(status, 404);
    let (status, _) = http_request(addr, "POST", "/update", "* <s> <p> <o>").expect("bad op");
    assert_eq!(status, 400);

    server.shutdown();
}
