//! # swans-colstore
//!
//! The column-store engine — the reproduction's MonetDB/SQL stand-in.
//!
//! Architectural commitments, mirroring what the paper observes about
//! MonetDB in §4.3:
//!
//! * **Full-column reads.** A column is the I/O unit: the first touch of a
//!   column in a (cold) run reads the whole column segment into the buffer
//!   pool. This is why, on the column store, the triple-store layout pays a
//!   large up-front read for the big `triples` columns while the vertically
//!   partitioned layout "only \[reads\] the property tables relevant to a
//!   query".
//! * **Vectorized, materializing operators.** Operators consume and produce
//!   column vectors ([`Chunk`]s), processing a column at a time in tight
//!   loops — the architectural counterpoint to the row engine's
//!   tuple-at-a-time iterators.
//! * **Sorted-column selections.** Selections on the leading sort columns
//!   binary-search instead of scanning; the leading column of a sorted
//!   table can be RLE-compressed (`compression`), shrinking its on-disk
//!   segment — the effect the paper attributes to "column-stores with
//!   compression (e.g., RLE or delta-compression)" achieving PSO clustering
//!   without storing the property column.
//! * **Compressed execution.** An RLE-stored column is not decompressed
//!   at the scan boundary: scans emit it as a [`RunCol`] (values + run
//!   ends) that flows through the operator tree as a first-class
//!   representation — selections test once per run, merge joins advance
//!   whole runs and emit run×match blocks, sorted aggregation reads
//!   counts straight off run lengths, and gathers/slices with monotone
//!   selection vectors stay run-encoded. Expansion to flat values happens
//!   lazily, at the result boundary or for an operator that genuinely
//!   needs flat input (hash kernels, unions). The layer can be switched
//!   off ([`ColumnEngine::set_run_kernels`]) for A/B comparison, and
//!   [`ExecStatsSnapshot`] records run scans, run-kernel dispatches,
//!   expansions, and compressed-vs-logical scan bytes.
//! * **Projection pushdown.** Only the columns a query actually consumes
//!   are read and materialized (late materialization).
//! * **Sortedness-aware dispatch.** Physical properties derived from the
//!   layout ([`swans_plan::props`]) pick merge joins, run-based
//!   aggregation and linear distinct over their hash/sort counterparts
//!   whenever the input order allows; every decision is observable through
//!   [`ExecStatsSnapshot`] and the whole layer can be switched off
//!   ([`ColumnEngine::set_sorted_paths`]) for A/B comparison.
//! * **Write-store / read-store split.** The sorted tables above are the
//!   immutable *read store*; mutations land in an unsorted in-memory
//!   *write store* (per-property insert vectors plus a tombstone set, the
//!   C-Store design the paper benchmarks) that every scan unions behind
//!   its sorted rows. [`ColumnEngine::merge`] — explicit, or triggered by
//!   a pending-operation threshold — rebuilds the affected sorted tables
//!   and restores sorted-path dispatch.
//! * **Morsel-driven parallelism.** With [`ColumnEngine::set_threads`],
//!   base scans, selections, hash-join build/probe, aggregation and
//!   distinct split their input into fixed-size morsels executed by a
//!   scoped-thread worker pool ([`parallel`]); every barrier merges in
//!   morsel order, so parallel output is bit-identical to sequential and
//!   physical-property claims survive partitioning. Sorted-path kernels
//!   (merge join, run-based aggregation) run the *sequential* kernel per
//!   value-aligned partition, so the sortedness-aware dispatch wins are
//!   preserved at every thread count.

#![warn(missing_docs)]

pub mod chunk;
pub mod column;
pub mod engine;
pub mod ops;
pub mod parallel;

pub use chunk::{Chunk, ColData, RunCol};
pub use column::Column;
pub use engine::{ColumnEngine, ExecStatsSnapshot, DEFAULT_MERGE_THRESHOLD};
pub use parallel::WorkerPool;
