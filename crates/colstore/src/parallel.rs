//! Morsel-driven intra-query parallelism: a small scoped-thread worker
//! pool (std only, no external crates).
//!
//! The execution model follows the morsel-driven design: an operator's
//! input is cut into fixed-size *morsels* (row ranges), a pool of workers
//! pulls morsel indices from a shared atomic counter until the batch is
//! drained, and the per-morsel outputs are merged **in morsel order** at
//! the batch barrier. Because every merge is order-preserving, a
//! parallelized operator produces *bit-identical* output to its sequential
//! form — physical-property claims ([`swans_plan::props`]) survive
//! partitioning unchanged, and result equivalence across thread counts is
//! structural, not accidental.
//!
//! Two execution shapes cover every operator:
//!
//! * [`WorkerPool::run_with`] — uniform morsel loops. Each worker owns one
//!   *scratch* value (`init` runs once per worker, **not** once per
//!   morsel) that it reuses across every morsel it pulls — this is how
//!   hash-aggregation maps and join scratch survive across morsels
//!   instead of being reallocated per task.
//! * [`WorkerPool::run_reduce`] — per-worker partial aggregation. Workers
//!   fold morsels into their scratch and the scratches themselves are the
//!   result (at most one per worker), merged by the caller at the barrier.
//!
//! The pool can time every task ([`WorkerPool::set_timing`]): with one
//! thread the tasks run inline (uncontended), so the recorded durations
//! feed an honest list-scheduling model of the parallel makespan — the
//! same simulation philosophy as the storage layer's simulated disk.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Rows per morsel. Small enough that realistic benchmark columns split
/// into many morsels (load balance), large enough that per-morsel
/// bookkeeping is noise against the per-row kernel work.
pub const MORSEL_ROWS: usize = 4096;

/// Upper bound on morsels per batch (keeps the barrier merge cheap).
pub const MAX_MORSELS: usize = 256;

/// Number of morsels a `len`-row input splits into. Independent of the
/// thread count, so the task set — and therefore the merged output — is
/// identical at every parallelism level.
pub fn partitions(len: usize) -> usize {
    if len == 0 {
        return 1;
    }
    len.div_ceil(MORSEL_ROWS).clamp(1, MAX_MORSELS)
}

/// The row range of morsel `i` of `parts` over a `len`-row input.
pub fn morsel_range(len: usize, parts: usize, i: usize) -> std::ops::Range<usize> {
    // Even split with the remainder spread over the first morsels, so no
    // worker draws a systematically larger share.
    let base = len / parts;
    let extra = len % parts;
    let start = i * base + i.min(extra);
    let end = start + base + usize::from(i < extra);
    start..end
}

/// Segment boundaries for `parts` morsels over a `len`-row *sorted*
/// input, each boundary advanced past the value run containing it so no
/// run straddles a segment — the partitioning the sorted kernels (merge
/// join, run aggregation, linear distinct) require to stay exact under
/// parallelism. `eq(a, b)` compares rows `a` and `b` for equality;
/// because the input is sorted, the rows equal to the one just before a
/// tentative boundary form a contiguous prefix of the tail, so the run
/// end is found by binary search (O(parts · log len) total — a single
/// giant run costs log time, not a linear walk per boundary).
///
/// **Run-encoded inputs do not need this function**: a [`RunCol`]'s run
/// headers *are* the value alignment, so run-native kernels partition
/// directly on run indices ([`morsel_range`] over the run count) — every
/// segment boundary is a run boundary by construction, at zero search
/// cost.
///
/// [`RunCol`]: crate::chunk::RunCol
pub fn aligned_bounds(len: usize, parts: usize, eq: impl Fn(usize, usize) -> bool) -> Vec<usize> {
    let mut bounds = vec![0usize];
    for m in 1..parts {
        let start = morsel_range(len, parts, m).start;
        if start == 0 || start >= len {
            continue;
        }
        let anchor = start - 1;
        // First index in [start, len) whose row differs from `anchor`'s.
        let (mut lo, mut hi) = (start, len);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if eq(anchor, mid) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo > *bounds.last().expect("non-empty") && lo < len {
            bounds.push(lo);
        }
    }
    bounds.push(len);
    bounds
}

/// A one-shot task accepted by [`WorkerPool::run_once`].
pub type OnceTask<'env, T> = Box<dyn FnOnce() -> T + Send + 'env>;

/// A scoped-thread worker pool of a fixed width.
///
/// The pool is stateless between batches: each `run_*` call spawns up to
/// `threads` scoped workers (`std::thread::scope`), drains the batch, and
/// joins them. With one thread (or one morsel) the batch runs inline on
/// the caller's thread — no spawn, same code path, same output.
#[derive(Debug)]
pub struct WorkerPool {
    threads: usize,
    timing: AtomicBool,
    /// Per-batch task durations (seconds, in morsel order), recorded only
    /// while timing is enabled.
    log: Mutex<Vec<Vec<f64>>>,
}

impl WorkerPool {
    /// A pool that runs batches on up to `threads` workers (minimum 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            timing: AtomicBool::new(false),
            log: Mutex::new(Vec::new()),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether per-task timing is enabled.
    pub fn timing(&self) -> bool {
        self.timing.load(Ordering::Relaxed)
    }

    /// Enables or disables per-task timing. Timings recorded with one
    /// thread are uncontended and feed the scaling model of `bench_pr4`.
    pub fn set_timing(&self, on: bool) {
        self.timing.store(on, Ordering::Relaxed);
        if on {
            self.log.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }

    /// Drains the recorded batches of task durations.
    pub fn take_log(&self) -> Vec<Vec<f64>> {
        std::mem::take(&mut self.log.lock().unwrap_or_else(|e| e.into_inner()))
    }

    fn record_batch(&self, mut durs: Vec<(usize, f64)>) {
        durs.sort_unstable_by_key(|&(i, _)| i);
        self.log
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(durs.into_iter().map(|(_, d)| d).collect());
    }

    /// Runs `parts` morsel tasks, returning their outputs **in morsel
    /// order**. Each worker builds one scratch value with `init` and
    /// reuses it for every morsel it pulls.
    pub fn run_with<S, T, I, F>(&self, parts: usize, init: I, task: F) -> Vec<T>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        let timing = self.timing.load(Ordering::Relaxed);
        let workers = self.threads.min(parts);
        if workers <= 1 {
            let mut scratch = init();
            let mut durs = timing.then(|| Vec::with_capacity(parts));
            let out = (0..parts)
                .map(|i| {
                    let t0 = timing.then(Instant::now);
                    let r = task(&mut scratch, i);
                    if let (Some(d), Some(t0)) = (durs.as_mut(), t0) {
                        d.push((i, t0.elapsed().as_secs_f64()));
                    }
                    r
                })
                .collect();
            if let Some(d) = durs {
                self.record_batch(d);
            }
            return out;
        }

        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<T>> = (0..parts).map(|_| None).collect();
        let mut all_durs: Vec<(usize, f64)> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut scratch = init();
                        let mut got: Vec<(usize, T)> = Vec::new();
                        let mut durs: Vec<(usize, f64)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= parts {
                                break;
                            }
                            let t0 = timing.then(Instant::now);
                            let r = task(&mut scratch, i);
                            if let Some(t0) = t0 {
                                durs.push((i, t0.elapsed().as_secs_f64()));
                            }
                            got.push((i, r));
                        }
                        (got, durs)
                    })
                })
                .collect();
            for h in handles {
                let (got, durs) = h.join().expect("worker panicked");
                for (i, r) in got {
                    slots[i] = Some(r);
                }
                all_durs.extend(durs);
            }
        });
        if timing {
            self.record_batch(all_durs);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every morsel produced"))
            .collect()
    }

    /// Runs `parts` morsel tasks that fold into per-worker scratch values
    /// and returns the scratches (one per worker that ran, at most
    /// `threads`). The caller merges them at the barrier; merge order is
    /// the caller's responsibility to keep deterministic (the built-in
    /// consumers merge into order-insensitive structures).
    pub fn run_reduce<S, I, F>(&self, parts: usize, init: I, fold: F) -> Vec<S>
    where
        S: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) + Sync,
    {
        let timing = self.timing.load(Ordering::Relaxed);
        let workers = self.threads.min(parts);
        if workers <= 1 {
            let mut scratch = init();
            let mut durs = timing.then(|| Vec::with_capacity(parts));
            for i in 0..parts {
                let t0 = timing.then(Instant::now);
                fold(&mut scratch, i);
                if let (Some(d), Some(t0)) = (durs.as_mut(), t0) {
                    d.push((i, t0.elapsed().as_secs_f64()));
                }
            }
            if let Some(d) = durs {
                self.record_batch(d);
            }
            return vec![scratch];
        }

        let next = AtomicUsize::new(0);
        let mut out: Vec<S> = Vec::with_capacity(workers);
        let mut all_durs: Vec<(usize, f64)> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut scratch = init();
                        let mut durs: Vec<(usize, f64)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= parts {
                                break;
                            }
                            let t0 = timing.then(Instant::now);
                            fold(&mut scratch, i);
                            if let Some(t0) = t0 {
                                durs.push((i, t0.elapsed().as_secs_f64()));
                            }
                        }
                        (scratch, durs)
                    })
                })
                .collect();
            for h in handles {
                let (scratch, durs) = h.join().expect("worker panicked");
                out.push(scratch);
                all_durs.extend(durs);
            }
        });
        if timing {
            self.record_batch(all_durs);
        }
        out
    }

    /// Runs a batch of heterogeneous one-shot tasks (e.g. tasks that own
    /// disjoint `&mut` output slices), returning outputs in task order.
    pub fn run_once<'env, T>(&self, tasks: Vec<OnceTask<'env, T>>) -> Vec<T>
    where
        T: Send,
    {
        let parts = tasks.len();
        let timing = self.timing.load(Ordering::Relaxed);
        let workers = self.threads.min(parts);
        if workers <= 1 {
            let mut durs = timing.then(|| Vec::with_capacity(parts));
            let out = tasks
                .into_iter()
                .enumerate()
                .map(|(i, t)| {
                    let t0 = timing.then(Instant::now);
                    let r = t();
                    if let (Some(d), Some(t0)) = (durs.as_mut(), t0) {
                        d.push((i, t0.elapsed().as_secs_f64()));
                    }
                    r
                })
                .collect();
            if let Some(d) = durs {
                self.record_batch(d);
            }
            return out;
        }

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<OnceTask<'env, T>>>> =
            tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let mut out: Vec<Option<T>> = (0..parts).map(|_| None).collect();
        let mut all_durs: Vec<(usize, f64)> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut got: Vec<(usize, T)> = Vec::new();
                        let mut durs: Vec<(usize, f64)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= parts {
                                break;
                            }
                            let task = slots[i]
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .take()
                                .expect("each task taken once");
                            let t0 = timing.then(Instant::now);
                            let r = task();
                            if let Some(t0) = t0 {
                                durs.push((i, t0.elapsed().as_secs_f64()));
                            }
                            got.push((i, r));
                        }
                        (got, durs)
                    })
                })
                .collect();
            for h in handles {
                let (got, durs) = h.join().expect("worker panicked");
                for (i, r) in got {
                    out[i] = Some(r);
                }
                all_durs.extend(durs);
            }
        });
        if timing {
            self.record_batch(all_durs);
        }
        out.into_iter()
            .map(|s| s.expect("every task produced"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    #[cfg_attr(miri, ignore = "large input: minutes under the interpreter")]
    fn morsel_ranges_tile_the_input() {
        for len in [0usize, 1, 7, 4096, 4097, 100_000] {
            let parts = partitions(len);
            let mut covered = 0usize;
            for i in 0..parts {
                let r = morsel_range(len, parts, i);
                assert_eq!(r.start, covered, "len {len} morsel {i}");
                covered = r.end;
            }
            assert_eq!(covered, len, "len {len}");
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "large input: minutes under the interpreter")]
    fn aligned_bounds_never_split_a_run() {
        let keys: Vec<u64> = (0..10_000).map(|i| i / 37).collect();
        let parts = partitions(keys.len());
        let bounds = aligned_bounds(keys.len(), parts, |a, b| keys[a] == keys[b]);
        assert_eq!(bounds.first(), Some(&0));
        assert_eq!(bounds.last(), Some(&keys.len()));
        for w in bounds.windows(2) {
            assert!(w[0] < w[1], "bounds must strictly increase: {bounds:?}");
            assert!(w[1] == keys.len() || keys[w[1]] != keys[w[1] - 1]);
        }
        // A single giant run collapses to one segment.
        assert_eq!(aligned_bounds(100, 4, |_, _| true), vec![0, 100]);
    }

    #[test]
    fn partition_count_is_thread_independent_and_capped() {
        assert_eq!(partitions(0), 1);
        assert_eq!(partitions(1), 1);
        assert_eq!(partitions(MORSEL_ROWS), 1);
        assert_eq!(partitions(MORSEL_ROWS + 1), 2);
        assert_eq!(partitions(usize::MAX / 2), MAX_MORSELS);
    }

    #[test]
    fn run_with_returns_results_in_morsel_order() {
        for threads in [1, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let got = pool.run_with(37, || (), |_, i| i * 3);
            assert_eq!(got, (0..37).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    /// The scratch-reuse contract: `init` runs once per worker, not once
    /// per morsel — the whole point of per-worker scratch.
    #[test]
    fn scratch_is_built_per_worker_not_per_morsel() {
        for threads in [1usize, 2, 4] {
            let pool = WorkerPool::new(threads);
            let allocs = AtomicUsize::new(0);
            let parts = 64;
            let _ = pool.run_with(
                parts,
                || {
                    allocs.fetch_add(1, Ordering::Relaxed);
                    Vec::<u64>::new()
                },
                |scratch, i| {
                    scratch.push(i as u64);
                    scratch.len()
                },
            );
            let n = allocs.load(Ordering::Relaxed);
            assert!(
                n <= threads,
                "{threads} threads allocated {n} scratches for {parts} morsels"
            );
        }
    }

    #[test]
    fn run_reduce_folds_every_morsel_exactly_once() {
        for threads in [1, 2, 8] {
            let pool = WorkerPool::new(threads);
            let partials = pool.run_reduce(100, || 0u64, |acc, i| *acc += i as u64);
            assert!(partials.len() <= threads.max(1));
            assert_eq!(partials.iter().sum::<u64>(), 99 * 100 / 2);
        }
    }

    #[test]
    fn run_once_executes_disjoint_mut_slices() {
        let mut out = vec![0u32; 100];
        for threads in [1, 3] {
            let pool = WorkerPool::new(threads);
            out.fill(0);
            let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = out
                .chunks_mut(17)
                .enumerate()
                .map(|(k, chunk)| {
                    let task: Box<dyn FnOnce() -> usize + Send> = Box::new(move || {
                        for (j, v) in chunk.iter_mut().enumerate() {
                            *v = (k * 17 + j) as u32;
                        }
                        chunk.len()
                    });
                    task
                })
                .collect();
            let lens = pool.run_once(tasks);
            assert_eq!(lens.iter().sum::<usize>(), 100);
            assert_eq!(out, (0..100).collect::<Vec<u32>>());
        }
    }

    #[test]
    fn timing_log_records_one_batch_per_run() {
        let pool = WorkerPool::new(2);
        pool.set_timing(true);
        let _ = pool.run_with(10, || (), |_, i| i);
        let _ = pool.run_reduce(5, || 0u64, |a, i| *a += i as u64);
        let log = pool.take_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].len(), 10);
        assert_eq!(log[1].len(), 5);
        assert!(log.iter().flatten().all(|&d| d >= 0.0));
        assert!(pool.take_log().is_empty(), "log is drained");
        pool.set_timing(false);
        let _ = pool.run_with(4, || (), |_, i| i);
        assert!(pool.take_log().is_empty(), "timing off records nothing");
    }
}
