//! The column engine: storage layouts and the plan executor.
//!
//! Execution is *sortedness-aware*: before dispatching a join, group, or
//! distinct, the engine derives the input's physical properties
//! ([`swans_plan::props`]) against its own layout (the triples clustering
//! order; property tables are always `(s, o)`-sorted) and picks the
//! order-exploiting kernel when the derivation allows — merge joins,
//! run-based aggregation, linear distinct, binary-search selection, and
//! run-header resolution on RLE-compressed lead columns. Every dispatch
//! decision is counted in [`ExecStatsSnapshot`]; [`ColumnEngine::set_sorted_paths`]
//! turns the whole layer off for A/B comparison (the hash baseline the
//! benchmark trajectory records).

use std::sync::atomic::{AtomicU64, Ordering};

use swans_rdf::hash::{FxHashMap, FxHashSet};
use swans_rdf::{Delta, Id, SortOrder, Triple};
use swans_storage::{SegmentId, StorageManager};

use swans_plan::algebra::{leapfrog_fold, CmpOp, Plan};
use swans_plan::exec::{EngineError, QueryBudget};
use swans_plan::optimize::{optimize_cbo, reorder_joins};
use swans_plan::props::{derive as derive_props, PhysProps, PropsContext};
use swans_plan::stats::{PropStats, StatsCatalog, TripleStats};

use std::sync::{Arc, Mutex};

use crate::chunk::{Chunk, ColData, RunCol};
use crate::column::Column;
use crate::ops::{self, RunsView};
use crate::parallel::{aligned_bounds, morsel_range, partitions, WorkerPool};

/// Kernel-dispatch counters (cumulative since load or the last
/// [`ColumnEngine::reset_exec_stats`]).
#[derive(Debug, Default)]
struct ExecStats {
    merge_joins: AtomicU64,
    hash_joins: AtomicU64,
    leapfrog_dispatches: AtomicU64,
    sorted_group_counts: AtomicU64,
    hash_group_counts: AtomicU64,
    sorted_distincts: AtomicU64,
    sort_distincts: AtomicU64,
    distinct_passthroughs: AtomicU64,
    sorted_selects: AtomicU64,
    rle_selects: AtomicU64,
    sorted_in_selects: AtomicU64,
    delta_union_scans: AtomicU64,
    merges: AtomicU64,
    parallel_tasks: AtomicU64,
    morsels: AtomicU64,
    run_scans: AtomicU64,
    run_kernel_dispatches: AtomicU64,
    runs_expanded: AtomicU64,
    scan_bytes_compressed: AtomicU64,
    scan_bytes_logical: AtomicU64,
    cancelled_queries: AtomicU64,
    peak_mem_bytes: AtomicU64,
}

impl ExecStats {
    fn snapshot(&self) -> ExecStatsSnapshot {
        ExecStatsSnapshot {
            merge_joins: self.merge_joins.load(Ordering::Relaxed),
            hash_joins: self.hash_joins.load(Ordering::Relaxed),
            leapfrog_dispatches: self.leapfrog_dispatches.load(Ordering::Relaxed),
            sorted_group_counts: self.sorted_group_counts.load(Ordering::Relaxed),
            hash_group_counts: self.hash_group_counts.load(Ordering::Relaxed),
            sorted_distincts: self.sorted_distincts.load(Ordering::Relaxed),
            sort_distincts: self.sort_distincts.load(Ordering::Relaxed),
            distinct_passthroughs: self.distinct_passthroughs.load(Ordering::Relaxed),
            sorted_selects: self.sorted_selects.load(Ordering::Relaxed),
            rle_selects: self.rle_selects.load(Ordering::Relaxed),
            sorted_in_selects: self.sorted_in_selects.load(Ordering::Relaxed),
            delta_union_scans: self.delta_union_scans.load(Ordering::Relaxed),
            merges: self.merges.load(Ordering::Relaxed),
            parallel_tasks: self.parallel_tasks.load(Ordering::Relaxed),
            morsels: self.morsels.load(Ordering::Relaxed),
            run_scans: self.run_scans.load(Ordering::Relaxed),
            run_kernel_dispatches: self.run_kernel_dispatches.load(Ordering::Relaxed),
            runs_expanded: self.runs_expanded.load(Ordering::Relaxed),
            scan_bytes_compressed: self.scan_bytes_compressed.load(Ordering::Relaxed),
            scan_bytes_logical: self.scan_bytes_logical.load(Ordering::Relaxed),
            cancelled_queries: self.cancelled_queries.load(Ordering::Relaxed),
            peak_mem_bytes: self.peak_mem_bytes.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.merge_joins.store(0, Ordering::Relaxed);
        self.hash_joins.store(0, Ordering::Relaxed);
        self.leapfrog_dispatches.store(0, Ordering::Relaxed);
        self.sorted_group_counts.store(0, Ordering::Relaxed);
        self.hash_group_counts.store(0, Ordering::Relaxed);
        self.sorted_distincts.store(0, Ordering::Relaxed);
        self.sort_distincts.store(0, Ordering::Relaxed);
        self.distinct_passthroughs.store(0, Ordering::Relaxed);
        self.sorted_selects.store(0, Ordering::Relaxed);
        self.rle_selects.store(0, Ordering::Relaxed);
        self.sorted_in_selects.store(0, Ordering::Relaxed);
        self.delta_union_scans.store(0, Ordering::Relaxed);
        self.merges.store(0, Ordering::Relaxed);
        self.parallel_tasks.store(0, Ordering::Relaxed);
        self.morsels.store(0, Ordering::Relaxed);
        self.run_scans.store(0, Ordering::Relaxed);
        self.run_kernel_dispatches.store(0, Ordering::Relaxed);
        self.runs_expanded.store(0, Ordering::Relaxed);
        self.scan_bytes_compressed.store(0, Ordering::Relaxed);
        self.scan_bytes_logical.store(0, Ordering::Relaxed);
        self.cancelled_queries.store(0, Ordering::Relaxed);
        self.peak_mem_bytes.store(0, Ordering::Relaxed);
    }
}

#[inline]
fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Output of a two-key group-count: both key columns plus the counts.
type GroupCount2 = (Vec<u64>, Vec<u64>, Vec<u64>);

/// Everything an operator evaluation carries besides the plan: the
/// physical-property context the dispatch decisions derive against and
/// the caller's resource budget (deadline, cancellation token, memory
/// limit). Bundled so the recursive executor threads one reference.
struct ExecCtx<'a> {
    props: &'a PropsContext,
    budget: &'a QueryBudget,
}

/// A point-in-time copy of the dispatch counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStatsSnapshot {
    /// Joins executed by [`ops::merge_join`] (both inputs derived-sorted).
    pub merge_joins: u64,
    /// Joins executed by [`ops::hash_join`].
    pub hash_joins: u64,
    /// Multi-way star joins executed by the [`ops::leapfrog_join`]
    /// kernel (every input derived-sorted on its key column). A
    /// leapfrog node whose inputs lost their order falls back to the
    /// binary-join fold, counting under `merge_joins`/`hash_joins`
    /// instead.
    pub leapfrog_dispatches: u64,
    /// Group-counts executed by the run-based sorted kernels.
    pub sorted_group_counts: u64,
    /// Group-counts executed by the hash kernels (incl. the generic
    /// fallback).
    pub hash_group_counts: u64,
    /// Distincts executed by the linear [`ops::distinct_sorted`] kernel.
    pub sorted_distincts: u64,
    /// Distincts executed by the sort-based [`ops::distinct_rows`] kernel.
    pub sort_distincts: u64,
    /// Distincts skipped because the input was derived-distinct.
    pub distinct_passthroughs: u64,
    /// Equality selections answered by binary search on a derived-sorted
    /// column.
    pub sorted_selects: u64,
    /// Scan bounds resolved from RLE run headers instead of decompressed
    /// values.
    pub rle_selects: u64,
    /// `IN`-list selections on a derived-sorted column answered by
    /// per-probe binary search (k·log n) instead of a linear membership
    /// scan.
    pub sorted_in_selects: u64,
    /// Base scans that ran the write-store union path (a live tombstone
    /// set, or pending inserts matching the scan bounds); scans the
    /// write store cannot affect keep the plain read-store path.
    pub delta_union_scans: u64,
    /// Write-store merges into the sorted read-store (explicit or
    /// threshold-triggered).
    pub merges: u64,
    /// Operator executions that actually partitioned work across the
    /// morsel pool (batches with more than one morsel). Scratch state
    /// (hash maps, join tables, key buffers) is allocated per *worker per
    /// batch* — at most `threads` scratches per batch, never one per
    /// morsel — so scratch allocations are bounded by
    /// `parallel_tasks × threads` while the work units number `morsels`.
    pub parallel_tasks: u64,
    /// Total morsels executed across all partitioned batches.
    pub morsels: u64,
    /// Base scans that emitted a run-encoded column straight from the
    /// stored RLE representation — compressed execution, no
    /// decompression at the scan boundary.
    pub run_scans: u64,
    /// Operators executed by a run-native kernel (run-aware selection,
    /// run×block merge join, aggregation off run lengths) instead of the
    /// flat twin.
    pub run_kernel_dispatches: u64,
    /// Run-encoded columns expanded to flat values — at the result
    /// boundary, or for an operator that genuinely needs flat input
    /// (hash kernels, unordered gathers).
    pub runs_expanded: u64,
    /// Bytes actually charged for run-emitting scans (the compressed run
    /// headers). Compare with [`ExecStatsSnapshot::scan_bytes_logical`].
    pub scan_bytes_compressed: u64,
    /// Bytes the same scans would have charged decompressed (8 bytes per
    /// logical row) — the I/O the run representation saved.
    pub scan_bytes_logical: u64,
    /// Executions that ended in [`EngineError::Cancelled`] — deadline,
    /// memory limit, or caller cancellation (resource governance).
    pub cancelled_queries: u64,
    /// High-water mark of per-query tracked allocations (bytes charged to
    /// a [`QueryBudget`] by joins, aggregations, and result
    /// materialization) across all executions since the last reset.
    pub peak_mem_bytes: u64,
}

/// The 3-column triples table, sorted by one clustering order.
///
/// Cloning is cheap: [`Column`] data lives behind `Arc`s, so a clone is a
/// shared view of the same immutable sorted run — the substrate of
/// [`ColumnEngine::fork`]'s snapshot semantics.
#[derive(Debug, Clone)]
struct TripleTable {
    order: SortOrder,
    /// Columns at their *logical* positions (0 = s, 1 = p, 2 = o); the row
    /// order is the clustering order's lexicographic sort.
    cols: [Column; 3],
}

/// One vertically-partitioned property table, sorted by (subject, object).
/// Cloning shares the column data (see [`TripleTable`]).
#[derive(Debug, Clone)]
struct PropTable {
    s: Column,
    o: Column,
}

/// The C-Store-style *write store*: the unsorted, in-memory side of the
/// engine that absorbs mutations so the sorted read-store tables stay
/// immutable between merges.
///
/// Inserts are kept twice — once in arrival order (the triple-store view)
/// and once bucketed per property (the vertically-partitioned view) — so
/// either layout's scans can union their pending tail in O(matching rows).
/// Deletes are tombstones checked against every read-store row a scan
/// produces.
#[derive(Debug, Default, Clone)]
struct WriteStore {
    /// Pending inserts, in arrival order.
    inserts: Vec<Triple>,
    /// The same pending inserts bucketed by property (`(s, o)` pairs).
    by_prop: FxHashMap<Id, Vec<(u64, u64)>>,
    /// Tombstones: read-store rows to hide until the next merge removes
    /// them physically.
    deletes: FxHashSet<Triple>,
    /// Property ids with at least one tombstone — lets a scan bound to a
    /// property the tombstones cannot match skip the union path entirely.
    delete_props: FxHashSet<Id>,
}

impl WriteStore {
    fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Number of pending operations (inserts + tombstones).
    fn pending(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }
}

/// Default auto-merge threshold: pending operations beyond which
/// [`ColumnEngine::apply`] triggers a merge on its own.
pub const DEFAULT_MERGE_THRESHOLD: usize = 16_384;

/// The column-store engine instance: either a triple-store layout, a
/// vertically-partitioned layout, or both (they share the storage manager
/// and thus the I/O accounting).
#[derive(Debug)]
pub struct ColumnEngine {
    triple: Option<TripleTable>,
    props: FxHashMap<Id, PropTable>,
    /// Whether [`ColumnEngine::load_vertical`] ran — distinguishes "no
    /// vertically-partitioned layout at all" (an execution error) from "a
    /// property with no triples" (an empty scan).
    vertical_loaded: bool,
    /// Whether the sortedness-aware dispatch layer is active (default).
    /// Off, every join hashes and every aggregation/distinct uses the
    /// order-oblivious kernel — the A/B baseline.
    sorted_paths: bool,
    /// Whether run-encoded execution is active (default): base scans of
    /// RLE columns emit runs, and operators dispatch run-native kernels
    /// on them. Off, every scan decompresses at the scan boundary — the
    /// flat-kernel A/B baseline (sorted dispatch still applies).
    run_kernels: bool,
    /// Whether cost-based join enumeration is active (default): join
    /// chains re-planned by [`optimize_cbo`] against the statistics
    /// catalog. Off, the statistics-free rotation heuristic
    /// ([`reorder_joins`]) plans alone — the A/B baseline mirroring
    /// `sorted_paths`/`run_kernels`.
    cbo: bool,
    /// Per-table statistics collected at load/merge time and published
    /// through [`PropsContext::stats`] for the cost model. `None` until
    /// the first load; shared by `Arc` so snapshot forks republish the
    /// same catalog until their next merge recollects.
    stats_catalog: Option<Arc<StatsCatalog>>,
    /// Memoized [`optimize_cbo`] rewrites keyed by the submitted plan.
    /// Enumeration is deterministic in (plan, physical context), and
    /// every context-changing mutation clears the map, so a hit is
    /// exactly what a fresh enumeration would produce — repeated
    /// executions pay the DP once (prepared-statement economics).
    plan_cache: Mutex<FxHashMap<Plan, Arc<Plan>>>,
    /// Whether [`ColumnEngine::execute`] runs the static plan verifier
    /// ([`swans_plan::verify`](mod@swans_plan::verify)) before executing. Defaults to on in
    /// debug builds and off in release; `StoreConfig::with_verify(true)`
    /// opts a release build in.
    verify: bool,
    /// Kernel-dispatch counters.
    stats: ExecStats,
    /// The delta side: pending inserts and tombstones.
    write: WriteStore,
    /// Compression flag [`ColumnEngine::load_vertical`] ran with — a
    /// merge creates *new* property tables under the same policy (columns
    /// that already exist re-take their own RLE decision per rewrite).
    vp_compression: bool,
    /// Pending operations beyond which [`ColumnEngine::apply`] merges
    /// automatically.
    merge_threshold: usize,
    /// Write-ahead log segment for delta accounting (created lazily on the
    /// first apply, truncated by merges).
    wal: Option<SegmentId>,
    /// Bytes currently in the write-ahead log.
    wal_bytes: u64,
    /// The morsel-driven worker pool executing partitioned operators
    /// (width 1 = inline, the default).
    pool: WorkerPool,
}

impl Default for ColumnEngine {
    fn default() -> Self {
        Self {
            triple: None,
            props: FxHashMap::default(),
            vertical_loaded: false,
            sorted_paths: true,
            run_kernels: true,
            cbo: true,
            stats_catalog: None,
            plan_cache: Mutex::new(FxHashMap::default()),
            verify: cfg!(debug_assertions),
            stats: ExecStats::default(),
            write: WriteStore::default(),
            vp_compression: false,
            merge_threshold: DEFAULT_MERGE_THRESHOLD,
            wal: None,
            wal_bytes: 0,
            pool: WorkerPool::new(1),
        }
    }
}

impl ColumnEngine {
    /// An engine with no tables loaded.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables or disables the sortedness-aware execution layer (merge
    /// joins, run-based aggregation, linear distinct, binary-search
    /// selection). On by default; turning it off forces the hash baseline
    /// the benchmark trajectory compares against.
    pub fn set_sorted_paths(&mut self, enabled: bool) {
        self.sorted_paths = enabled;
        self.invalidate_plan_cache();
    }

    /// Whether the sortedness-aware execution layer is active.
    pub fn sorted_paths(&self) -> bool {
        self.sorted_paths
    }

    /// Enables or disables run-encoded (compressed) execution: base scans
    /// of RLE-stored columns emitting runs, and the run-native kernels
    /// that consume them. On by default; turning it off forces every scan
    /// to decompress at the scan boundary — the flat-kernel baseline the
    /// compressed-execution benchmark compares against (mirroring
    /// [`ColumnEngine::set_sorted_paths`]). Results are bit-identical
    /// either way.
    pub fn set_run_kernels(&mut self, enabled: bool) {
        self.run_kernels = enabled;
        self.invalidate_plan_cache();
    }

    /// Whether run-encoded execution is active.
    pub fn run_kernels(&self) -> bool {
        self.run_kernels
    }

    /// Enables or disables cost-based join enumeration: with statistics
    /// loaded, join chains are re-planned by
    /// [`optimize_cbo`] — DP over
    /// the join graph plus the leapfrog star kernel — instead of the
    /// statistics-free rotation heuristic. On by default; turning it off
    /// pins the heuristic baseline the plan-quality benchmark compares
    /// against (mirroring [`ColumnEngine::set_sorted_paths`]). Results
    /// are bit-identical either way up to row order of the final result
    /// only when plans are order-insensitive; the A/B tests compare
    /// normalized (sorted) rows.
    pub fn set_cbo(&mut self, enabled: bool) {
        self.cbo = enabled;
        self.invalidate_plan_cache();
    }

    /// Whether cost-based join enumeration is active.
    pub fn cbo(&self) -> bool {
        self.cbo
    }

    /// Enables or disables pre-execution plan verification (the static
    /// checker in [`swans_plan::verify`](mod@swans_plan::verify)): flow typing, physical-property
    /// soundness and executor legality, with failures surfacing as
    /// [`EngineError::Verify`] naming the offending operator by plan
    /// path. On by default in debug builds; release builds opt in
    /// through `StoreConfig::with_verify(true)`. Independent of the
    /// debug-only shadow validator, which spot-checks claimed properties
    /// against actual operator outputs and is always active under
    /// `debug_assertions`.
    pub fn set_verify(&mut self, on: bool) {
        self.verify = on;
    }

    /// Whether pre-execution plan verification is active.
    pub fn verify_enabled(&self) -> bool {
        self.verify
    }

    /// Whether base scans may emit run-encoded columns: compressed
    /// execution rides on the sorted layer (runs only exist on sorted
    /// columns, and the hash baseline must measure plain flat scans).
    fn run_emission(&self) -> bool {
        self.sorted_paths && self.run_kernels
    }

    /// Sets the morsel-pool width: partitioned operators execute on up to
    /// `threads` scoped worker threads (1 — the default — runs every
    /// morsel inline on the calling thread). Results are bit-identical at
    /// every width; only wall-clock changes. An enabled task-timing flag
    /// survives the resize; the recorded log is cleared (its batches
    /// belong to the old width).
    pub fn set_threads(&mut self, threads: usize) {
        let timing = self.pool.timing();
        self.pool = WorkerPool::new(threads);
        self.pool.set_timing(timing);
    }

    /// The configured morsel-pool width.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Enables or disables per-morsel task timing in the worker pool (the
    /// raw material of `bench_pr4`'s scaling model). Timings taken at
    /// width 1 are uncontended.
    pub fn set_task_timing(&self, on: bool) {
        self.pool.set_timing(on);
    }

    /// Drains the recorded batches of per-morsel task durations
    /// (seconds), one inner vector per pool barrier.
    pub fn take_task_log(&self) -> Vec<Vec<f64>> {
        self.pool.take_log()
    }

    /// A snapshot of the kernel-dispatch counters.
    ///
    /// The compressed-execution counters make the run-encoded path
    /// auditable per query — which scans stayed compressed, which
    /// kernels consumed runs, and the bytes the representation saved:
    ///
    /// ```
    /// use swans_colstore::ColumnEngine;
    /// use swans_plan::algebra::{group_count, Plan};
    /// use swans_rdf::Triple;
    /// use swans_storage::{MachineProfile, StorageManager};
    ///
    /// // Each subject holds eight objects of property 7, so the (s, o)
    /// // table's subject column stores as 5k runs instead of 40k rows.
    /// let triples: Vec<Triple> = (0..40_000)
    ///     .map(|i| Triple::new(i / 8, 7, i % 8))
    ///     .collect();
    /// let storage = StorageManager::new(MachineProfile::B);
    /// let mut engine = ColumnEngine::new();
    /// engine.load_vertical(&storage, &triples, true);
    ///
    /// // Count statements per subject: the scan emits the subject column
    /// // run-encoded and the aggregate reads counts off the run lengths.
    /// let scan = Plan::ScanProperty {
    ///     property: 7,
    ///     s: None,
    ///     o: None,
    ///     emit_property: false,
    /// };
    /// let rows = engine.execute_rows(&group_count(scan, vec![0])).unwrap();
    /// assert_eq!(rows.len(), 5_000);
    ///
    /// let stats = engine.exec_stats();
    /// assert!(stats.run_scans > 0 && stats.run_kernel_dispatches > 0);
    /// // The scan charged the compressed run headers (16 B per run), not
    /// // the flat column (8 B per row):
    /// assert_eq!(stats.scan_bytes_logical, 40_000 * 8);
    /// assert_eq!(stats.scan_bytes_compressed, 5_000 * 16);
    /// ```
    pub fn exec_stats(&self) -> ExecStatsSnapshot {
        self.stats.snapshot()
    }

    /// Zeroes the kernel-dispatch counters.
    pub fn reset_exec_stats(&self) {
        self.stats.reset();
    }

    /// Lifetime count of write-store merges (explicit and
    /// threshold-triggered). The durability layer watches this to
    /// checkpoint whenever the engine folded its write store — a merge is
    /// exactly the moment the sorted state is worth snapshotting.
    pub fn merges(&self) -> u64 {
        self.exec_stats().merges
    }

    /// The physical-layout context plans are derived against.
    ///
    /// Pending write-store state is reported **per property**: only scans
    /// a pending *insert* can reach lose their order claims (the unioned
    /// tail is in arrival order) — scans over untouched properties keep
    /// claiming the storage order, so merge joins and run aggregation on
    /// them survive an unrelated pending delta. Tombstones never
    /// downgrade: hiding rows from a sorted stream leaves it sorted.
    pub fn props_ctx(&self) -> PropsContext {
        let emit = self.run_emission();
        PropsContext {
            triple_order: self.triple.as_ref().map(|t| t.order),
            pending_insert_props: self
                .write
                .by_prop
                .iter()
                .filter(|(_, rows)| !rows.is_empty())
                .map(|(&p, _)| p)
                .collect(),
            pending_tombstone_props: self.write.delete_props.iter().copied().collect(),
            rle_props: if emit {
                self.props
                    .iter()
                    .filter(|(_, t)| t.s.peek_runs().is_some_and(Self::emit_worthy))
                    .map(|(&p, _)| p)
                    .collect()
            } else {
                Default::default()
            },
            triple_lead_rle: emit
                && self.triple.as_ref().is_some_and(|t| {
                    let lead = t.order.permutation()[0];
                    t.cols[lead].peek_runs().is_some_and(Self::emit_worthy)
                }),
            stats: self.stats_catalog.clone(),
        }
    }

    /// Recollects the statistics catalog from the current read-store
    /// tables: row counts, per-column distinct counts (the sorted lead
    /// column by a linear boundary pass — on an RLE column that count is
    /// exactly the run count the header already holds — the rest by
    /// hashing) and the bytes a full scan touches as stored (16 B per
    /// run header for RLE-kept columns, 8 B per flat row). Runs at every
    /// load and merge — the only moments the read store changes — so the
    /// published catalog never describes dropped tables. Pending
    /// write-store deltas leave it slightly stale by design (see
    /// [`StatsCatalog`]); the next merge recollects.
    /// Drops every memoized plan rewrite. Called by every mutation that
    /// changes the physical context enumeration prices against: loads,
    /// delta application, merges, and the execution-layer switches.
    fn invalidate_plan_cache(&mut self) {
        self.plan_cache.get_mut().expect("plan cache").clear();
    }

    /// The memoized cost-based rewrite of `plan` under the current
    /// physical state (see the `plan_cache` field).
    fn cached_cbo(&self, plan: &Plan, ctx: &PropsContext) -> Arc<Plan> {
        /// Re-enumerating is cheap relative to unbounded growth; a full
        /// clear at the cap keeps the map O(workload distinct plans).
        const PLAN_CACHE_CAP: usize = 256;
        if let Some(hit) = self.plan_cache.lock().expect("plan cache").get(plan) {
            return hit.clone();
        }
        let optimized = Arc::new(optimize_cbo(plan.clone(), ctx));
        let mut cache = self.plan_cache.lock().expect("plan cache");
        if cache.len() >= PLAN_CACHE_CAP {
            cache.clear();
        }
        cache.insert(plan.clone(), optimized.clone());
        optimized
    }

    fn rebuild_stats(&mut self) {
        fn distinct_sorted(vals: &[u64]) -> u64 {
            u64::from(!vals.is_empty()) + vals.windows(2).filter(|w| w[0] != w[1]).count() as u64
        }
        fn distinct_hashed(vals: &[u64]) -> u64 {
            let seen: FxHashSet<u64> = vals.iter().copied().collect();
            seen.len() as u64
        }
        fn col_bytes(c: &Column) -> u64 {
            match c.peek_runs() {
                Some(r) => r.run_count() as u64 * 16,
                None => c.len() as u64 * 8,
            }
        }
        let mut catalog = StatsCatalog::default();
        if let Some(t) = &self.triple {
            let lead = t.order.permutation()[0];
            catalog.triple = Some(TripleStats {
                rows: t.cols[0].len() as u64,
                distinct: std::array::from_fn(|i| {
                    if i == lead {
                        distinct_sorted(t.cols[i].peek())
                    } else {
                        distinct_hashed(t.cols[i].peek())
                    }
                }),
                scan_bytes: t.cols.iter().map(col_bytes).sum(),
            });
        }
        for (&p, t) in &self.props {
            catalog.props.insert(
                p,
                PropStats {
                    rows: t.s.len() as u64,
                    distinct_subjects: distinct_sorted(t.s.peek()),
                    distinct_objects: distinct_hashed(t.o.peek()),
                    scan_bytes: col_bytes(&t.s) + col_bytes(&t.o),
                },
            );
        }
        // A triple-store-only engine still publishes per-property
        // statistics, grouped out of the triples table: property-bound
        // scans then estimate against the property's own row count and
        // object set instead of the whole-table independence assumption,
        // which collapses on correlated (p, o) pairs like (type, Text).
        if catalog.props.is_empty() {
            if let Some(t) = &self.triple {
                let (s, p, o) = (t.cols[0].peek(), t.cols[1].peek(), t.cols[2].peek());
                let mut groups: FxHashMap<Id, (u64, FxHashSet<u64>, FxHashSet<u64>)> =
                    FxHashMap::default();
                for i in 0..p.len() {
                    let g = groups.entry(p[i]).or_default();
                    g.0 += 1;
                    g.1.insert(s[i]);
                    g.2.insert(o[i]);
                }
                for (pid, (rows, subs, objs)) in groups {
                    catalog.props.insert(
                        pid,
                        PropStats {
                            rows,
                            distinct_subjects: subs.len() as u64,
                            distinct_objects: objs.len() as u64,
                            // Priced as if vertically partitioned: the
                            // uncompressed (s, o) pair per row.
                            scan_bytes: rows * 16,
                        },
                    );
                }
            }
        }
        self.stats_catalog = Some(Arc::new(catalog));
        self.invalidate_plan_cache();
    }

    /// Physical properties of `plan` under this engine's layout, or
    /// nothing when the sorted layer is disabled.
    fn plan_props(&self, plan: &Plan, ctx: &PropsContext) -> PhysProps {
        if self.sorted_paths {
            derive_props(plan, ctx)
        } else {
            PhysProps::unordered()
        }
    }

    /// Loads the triples table sorted by `order`. With `compress`, the
    /// leading sort column is stored RLE-compressed on disk (e.g. the
    /// property column under PSO — the paper's observation that column
    /// compression subsumes key-prefix compression).
    pub fn load_triple_store(
        &mut self,
        storage: &StorageManager,
        triples: &[Triple],
        order: SortOrder,
        compress: bool,
    ) {
        let mut sorted: Vec<Triple> = triples.to_vec();
        order.sort(&mut sorted);
        let perm = order.permutation();
        let mut logical: [Vec<u64>; 3] = [
            Vec::with_capacity(sorted.len()),
            Vec::with_capacity(sorted.len()),
            Vec::with_capacity(sorted.len()),
        ];
        for t in &sorted {
            let row = t.as_row();
            logical[0].push(row[0]);
            logical[1].push(row[1]);
            logical[2].push(row[2]);
        }
        let lead = perm[0];
        let names = ["triples/s", "triples/p", "triples/o"];
        let cols: [Column; 3] = std::array::from_fn(|i| {
            let data = std::mem::take(&mut logical[i]);
            Column::new(storage, names[i], data, i == lead, compress && i == lead)
        });
        self.triple = Some(TripleTable { order, cols });
        self.rebuild_stats();
    }

    /// Loads the vertically-partitioned layout: one `(s, o)` table per
    /// property, each sorted by (subject, object). With `compress`, the
    /// subject column is RLE-compressed.
    pub fn load_vertical(&mut self, storage: &StorageManager, triples: &[Triple], compress: bool) {
        let mut by_prop: FxHashMap<Id, Vec<(u64, u64)>> = FxHashMap::default();
        for t in triples {
            by_prop.entry(t.p).or_default().push((t.s, t.o));
        }
        // Deterministic segment layout: create tables in ascending property
        // id order.
        let mut props: Vec<Id> = by_prop.keys().copied().collect();
        props.sort_unstable();
        for p in props {
            let mut rows = by_prop.remove(&p).expect("key listed");
            rows.sort_unstable();
            let (s, o): (Vec<u64>, Vec<u64>) = rows.into_iter().unzip();
            let st = Column::new(storage, &format!("vp/{p}/s"), s, true, compress);
            let ot = Column::new(storage, &format!("vp/{p}/o"), o, false, false);
            self.props.insert(p, PropTable { s: st, o: ot });
        }
        self.vertical_loaded = true;
        self.vp_compression = compress;
        self.rebuild_stats();
    }

    /// A *snapshot fork*: an independent engine answering queries from
    /// exactly this engine's current state — sorted tables (shared
    /// zero-copy: column data lives behind `Arc`s, and
    /// [`Column::rewrite`] replaces, never mutates, the shared vectors)
    /// plus a private copy of the pending write store (bounded by the
    /// merge threshold). The fork is immutable-by-convention: the caller
    /// uses it for reads while the original keeps absorbing mutations and
    /// merging; nothing the original does changes a fork's answers.
    ///
    /// The fork gets **zeroed kernel-dispatch counters** and its own
    /// worker pool of the same width — concurrent readers each fork, so
    /// per-session statistics never cross-contaminate and pool barriers
    /// never interleave between sessions.
    pub fn fork(&self) -> ColumnEngine {
        ColumnEngine {
            triple: self.triple.clone(),
            props: self.props.clone(),
            vertical_loaded: self.vertical_loaded,
            sorted_paths: self.sorted_paths,
            run_kernels: self.run_kernels,
            cbo: self.cbo,
            stats_catalog: self.stats_catalog.clone(),
            plan_cache: Mutex::new(FxHashMap::default()),
            verify: self.verify,
            stats: ExecStats::default(),
            write: self.write.clone(),
            vp_compression: self.vp_compression,
            merge_threshold: self.merge_threshold,
            wal: self.wal,
            wal_bytes: self.wal_bytes,
            pool: WorkerPool::new(self.pool.threads()),
        }
    }

    /// Absorbs a [`Delta`] into the write store: tombstones first (a
    /// delete cancels matching *pending* inserts before it shadows
    /// read-store rows), then inserts. A tombstone is *not* lifted by a
    /// later insert of the same triple — it keeps hiding the read-store
    /// copies that existed at delete time, while the pending insert
    /// supplies the one new copy (scans never tombstone-check the pending
    /// tail). The delta's payload is charged to the write-ahead log; when
    /// the pending-operation count reaches the merge threshold the write
    /// store is merged into the sorted read store automatically.
    pub fn apply(&mut self, storage: &StorageManager, delta: &Delta) -> Result<(), EngineError> {
        if self.triple.is_none() && !self.vertical_loaded {
            return Err(EngineError::Unsupported(
                "no layout loaded to apply a delta to".into(),
            ));
        }
        // A pending tail downgrades scan claims, so memoized rewrites
        // priced against the clean state no longer apply.
        self.invalidate_plan_cache();
        if delta.is_empty() {
            return Ok(());
        }
        if !delta.deletes.is_empty() {
            // One set, one pass: all of a delta's deletes precede its
            // inserts, so cancelling pending inserts in a single sweep is
            // equivalent to per-delete removal and linear instead of
            // O(deletes × pending).
            let doomed: FxHashSet<Triple> = delta.deletes.iter().copied().collect();
            if !self.write.inserts.is_empty() {
                self.write.inserts.retain(|t| !doomed.contains(t));
                for (&p, v) in self.write.by_prop.iter_mut() {
                    v.retain(|&(s, o)| !doomed.contains(&Triple::new(s, p, o)));
                }
            }
            self.write.delete_props.extend(doomed.iter().map(|t| t.p));
            self.write.deletes.extend(doomed);
        }
        for t in &delta.inserts {
            self.write.inserts.push(*t);
            self.write.by_prop.entry(t.p).or_default().push((t.s, t.o));
        }

        // Charge the delta as a write-ahead-log append.
        let wal = *self
            .wal
            .get_or_insert_with(|| storage.create_segment("writestore/log", 0));
        let old_pages = storage.segment_pages(wal);
        self.wal_bytes += delta.payload_bytes();
        storage.resize_segment(wal, self.wal_bytes);
        let new_pages = storage.segment_pages(wal);
        // Append-only: rewrite the partially-filled last old page plus any
        // fresh pages.
        let first = old_pages.saturating_sub(1).min(new_pages.saturating_sub(1));
        storage.write_range(wal, first, new_pages - first);

        if self.write.pending() >= self.merge_threshold {
            self.merge(storage)?;
        }
        Ok(())
    }

    /// Number of pending write-store operations (inserts + tombstones).
    pub fn pending_delta(&self) -> usize {
        self.write.pending()
    }

    /// Sets the pending-operation count at which [`ColumnEngine::apply`]
    /// merges automatically ([`DEFAULT_MERGE_THRESHOLD`] unless changed;
    /// `usize::MAX` disables the trigger).
    pub fn set_merge_threshold(&mut self, ops: usize) {
        self.merge_threshold = ops.max(1);
    }

    /// Merges the write store into the sorted read store: every affected
    /// sorted table (the triples table, and each property table a pending
    /// operation touches) is rebuilt — tombstoned rows dropped, pending
    /// inserts sorted in — and rewritten through the storage layer under
    /// the same compression policy it was loaded with. Afterwards the
    /// write store is empty, so scans stop unioning and physical-property
    /// derivation claims the storage orders again: sorted-path dispatch
    /// (merge joins, run aggregation, RLE selects) is restored.
    pub fn merge(&mut self, storage: &StorageManager) -> Result<(), EngineError> {
        if self.write.is_empty() {
            return Ok(());
        }
        bump(&self.stats.merges);
        let write = std::mem::take(&mut self.write);

        if let Some(t) = &mut self.triple {
            let n = t.cols[0].len();
            let mut merged: Vec<Triple> = Vec::with_capacity(n + write.inserts.len());
            {
                let sv = t.cols[0].peek();
                let pv = t.cols[1].peek();
                let ov = t.cols[2].peek();
                for i in 0..n {
                    let tr = Triple::new(sv[i], pv[i], ov[i]);
                    if !write.deletes.contains(&tr) {
                        merged.push(tr);
                    }
                }
            }
            // A tombstone that matched nothing (e.g. it only cancelled a
            // pending insert) changes no stored row; skip the rewrite when
            // nothing was filtered and nothing is inserted.
            let changed = merged.len() != n || !write.inserts.is_empty();
            if changed {
                merged.extend_from_slice(&write.inserts);
                t.order.sort(&mut merged);
                let lead = t.order.permutation()[0];
                for c in 0..3 {
                    let data: Vec<u64> = merged.iter().map(|tr| tr.as_row()[c]).collect();
                    // Each column re-takes its own RLE decision from the
                    // merged data (see `Column::rewrite`).
                    t.cols[c].rewrite(data, c == lead);
                }
            }
        }

        if self.vertical_loaded {
            let mut affected: Vec<Id> = write
                .deletes
                .iter()
                .map(|t| t.p)
                .chain(write.by_prop.keys().copied())
                .collect();
            affected.sort_unstable();
            affected.dedup();
            for p in affected {
                let pending = write.by_prop.get(&p);
                let old_len = self.props.get(&p).map_or(0, |t| t.s.len());
                let mut rows: Vec<(u64, u64)> = match self.props.get(&p) {
                    Some(table) => {
                        let sv = table.s.peek();
                        let ov = table.o.peek();
                        (0..sv.len())
                            .filter(|&i| !write.deletes.contains(&Triple::new(sv[i], p, ov[i])))
                            .map(|i| (sv[i], ov[i]))
                            .collect()
                    }
                    None => Vec::new(),
                };
                // No tombstone hit this table and nothing is pending for
                // it: a rewrite would be byte-identical — skip it.
                if rows.len() == old_len && pending.is_none_or(Vec::is_empty) {
                    continue;
                }
                if let Some(v) = pending {
                    rows.extend_from_slice(v);
                }
                rows.sort_unstable();
                let (s, o): (Vec<u64>, Vec<u64>) = rows.into_iter().unzip();
                match self.props.get_mut(&p) {
                    Some(table) => {
                        table.s.rewrite(s, true);
                        table.o.rewrite(o, false);
                    }
                    None => {
                        if !s.is_empty() {
                            let st = Column::new(
                                storage,
                                &format!("vp/{p}/s"),
                                s,
                                true,
                                self.vp_compression,
                            );
                            let ot = Column::new(storage, &format!("vp/{p}/o"), o, false, false);
                            self.props.insert(p, PropTable { s: st, o: ot });
                        }
                    }
                }
            }
        }

        // The write-ahead log is consumed.
        if let Some(wal) = self.wal {
            storage.resize_segment(wal, 0);
        }
        self.wal_bytes = 0;
        self.rebuild_stats();
        Ok(())
    }

    /// Whether a triple-store layout is loaded.
    pub fn has_triple_store(&self) -> bool {
        self.triple.is_some()
    }

    /// Number of loaded property tables.
    pub fn property_table_count(&self) -> usize {
        self.props.len()
    }

    /// Executes a logical plan, returning the materialized result.
    ///
    /// The plan is validated first; structural problems, scans against a
    /// layout this engine never loaded, and unsupported constructs all
    /// surface as [`EngineError`] — plan execution never panics.
    ///
    /// With the sorted layer active, join chains are first reordered to
    /// pair sorted inputs ([`reorder_joins`]) — a physical rewrite that
    /// never changes answers, only which kernel runs. With verification
    /// active ([`ColumnEngine::set_verify`]; the default in debug
    /// builds), the plan *as executed* — after the reorder, under this
    /// engine's layout context — additionally passes the static verifier
    /// first, so an unjustifiable property claim is an
    /// [`EngineError::Verify`] naming the operator, not a wrong answer.
    pub fn execute(&self, plan: &Plan) -> Result<Chunk, EngineError> {
        self.execute_budgeted(plan, &QueryBudget::unlimited())
    }

    /// [`ColumnEngine::execute`] under a resource budget: the deadline,
    /// cancellation token, and memory limit of `budget` are checked
    /// cooperatively — per operator and per morsel inside the partitioned
    /// kernels — and a tripped budget surfaces as
    /// [`EngineError::Cancelled`] (never a panic, never a poisoned lock).
    /// Tracked allocations (join pair vectors, aggregation tables, result
    /// materialization) are charged to the budget as they grow, so a
    /// memory-limit abort happens *during* a blow-up, not after it.
    pub fn execute_budgeted(
        &self,
        plan: &Plan,
        budget: &QueryBudget,
    ) -> Result<Chunk, EngineError> {
        let result = self.execute_inner(plan, budget);
        self.stats
            .peak_mem_bytes
            .fetch_max(budget.peak_mem_bytes(), Ordering::Relaxed);
        if matches!(result, Err(EngineError::Cancelled { .. })) {
            bump(&self.stats.cancelled_queries);
        }
        result
    }

    fn execute_inner(&self, plan: &Plan, budget: &QueryBudget) -> Result<Chunk, EngineError> {
        plan.validate().map_err(EngineError::InvalidPlan)?;
        // One context per execution: the derivation (and the join
        // reordering) must see a consistent write-store state throughout.
        let ctx = self.props_ctx();
        // Run claims of the plan *as submitted* — the claim surface the
        // caller derived against, which the optimizer rewrites below must
        // not exceed (enforced at the result boundary after execution).
        let submitted_runs = self.plan_props(plan, &ctx).run_encoded;
        let cached;
        let reordered;
        let plan = if self.sorted_paths && swans_plan::optimize::has_join(plan) {
            // Cost-based enumeration when active (DP over the join graph
            // plus the leapfrog star kernel, priced against the
            // statistics catalog, memoized per submitted plan); the
            // statistics-free rotation heuristic as the A/B baseline.
            if self.cbo {
                cached = self.cached_cbo(plan, &ctx);
                &*cached
            } else {
                reordered = reorder_joins(plan.clone(), &ctx);
                &reordered
            }
        } else {
            plan
        };
        if self.verify {
            swans_plan::verify::verify(plan, &ctx).map_err(EngineError::Verify)?;
        }
        let ectx = ExecCtx {
            props: &ctx,
            budget,
        };
        let mut chunk = self.exec(plan, full_mask(plan.arity()), &ectx)?;
        // Converse run invariant at the caller boundary: the rewritten
        // plan may legitimately keep different columns run-encoded (a
        // cheaper join order moves which merge-join left side survives
        // compressed); expand any run column the submitted plan never
        // claimed, and count the expansion like any result-boundary one.
        for i in 0..chunk.arity() {
            if chunk.col_is_runs(i) && !submitted_runs.contains(&i) {
                bump(&self.stats.runs_expanded);
                chunk.expand_col(i);
            }
        }
        Ok(chunk)
    }

    /// [`ColumnEngine::execute`] decoded to row-major form — the result
    /// boundary of compressed execution: any column that stayed
    /// run-encoded through the whole plan is expanded here (and counted
    /// in [`ExecStatsSnapshot::runs_expanded`]).
    pub fn execute_rows(&self, plan: &Plan) -> Result<Vec<Vec<u64>>, EngineError> {
        self.execute_rows_budgeted(plan, &QueryBudget::unlimited())
    }

    /// [`ColumnEngine::execute_budgeted`] decoded to row-major form (see
    /// [`ColumnEngine::execute_rows`] for the expansion accounting). The
    /// row-major copy itself is charged to the budget before it is built.
    pub fn execute_rows_budgeted(
        &self,
        plan: &Plan,
        budget: &QueryBudget,
    ) -> Result<Vec<Vec<u64>>, EngineError> {
        let result = self.execute_rows_inner(plan, budget);
        self.stats
            .peak_mem_bytes
            .fetch_max(budget.peak_mem_bytes(), Ordering::Relaxed);
        if matches!(result, Err(EngineError::Cancelled { .. })) {
            bump(&self.stats.cancelled_queries);
        }
        result
    }

    fn execute_rows_inner(
        &self,
        plan: &Plan,
        budget: &QueryBudget,
    ) -> Result<Vec<Vec<u64>>, EngineError> {
        let chunk = self.execute_inner(plan, budget)?;
        budget.charge(8 * (chunk.arity() as u64) * chunk.len() as u64)?;
        for i in 0..chunk.arity() {
            if chunk.col_expansion_pending(i) {
                bump(&self.stats.runs_expanded);
            }
        }
        Ok(chunk.to_rows())
    }

    fn exec(&self, plan: &Plan, needed: u64, ctx: &ExecCtx<'_>) -> Result<Chunk, EngineError> {
        // Cooperative cancellation: every operator entry checks the
        // budget (deadline clock + latched token), so deep plans bail
        // between operators even when no kernel below notices.
        ctx.budget.check()?;
        let chunk = match plan {
            Plan::ScanTriples { s, p, o } => self.scan_triples(ctx.budget, *s, *p, *o, needed)?,
            Plan::ScanProperty {
                property,
                s,
                o,
                emit_property,
            } => self.scan_property(ctx.budget, *property, *s, *o, *emit_property, needed)?,
            Plan::Select { input, pred } => {
                let child = self.exec(input, needed | bit(pred.col), ctx)?;
                // An equality predicate on the child's leading sort column
                // resolves by binary search instead of a full scan — over
                // the run headers when the column is run-encoded.
                if pred.op == CmpOp::Eq && self.plan_props(input, ctx.props).sorted_on(pred.col) {
                    bump(&self.stats.sorted_selects);
                    let range = if let Some(runs) = child.col_runs(pred.col) {
                        bump(&self.stats.run_kernel_dispatches);
                        runs.eq_range_sorted(pred.value)
                    } else {
                        let data = child.col(pred.col);
                        let lo = data.partition_point(|&x| x < pred.value);
                        let hi = data.partition_point(|&x| x <= pred.value);
                        lo..hi
                    };
                    child.gather_range(range)
                } else if let Some(runs) = child.col_runs(pred.col) {
                    // Run-encoded column: one predicate test per run.
                    bump(&self.stats.run_kernel_dispatches);
                    let sel = ops::select_cmp_runs(runs, pred.value, pred.op == CmpOp::Ne);
                    self.par_gather(ctx.budget, &child, &sel)?
                } else {
                    let sel = self.par_select_cmp(
                        ctx.budget,
                        self.flat(&child, pred.col),
                        pred.value,
                        pred.op == CmpOp::Ne,
                    );
                    self.par_gather(ctx.budget, &child, &sel)?
                }
            }
            Plan::FilterIn { input, col, values } => {
                let child = self.exec(input, needed | bit(*col), ctx)?;
                // A derived-sorted filter column answers each probe value
                // by binary search (k·log n) instead of the linear
                // membership scan; run-encoded columns probe the (much
                // shorter) run headers. Both emit the exact ascending
                // position vector of the linear kernel.
                let sorted = self.plan_props(input, ctx.props).sorted_on(*col);
                let sel = if let Some(runs) = child.col_runs(*col) {
                    bump(&self.stats.run_kernel_dispatches);
                    if sorted {
                        bump(&self.stats.sorted_in_selects);
                        ops::select_in_sorted_runs(runs, values)
                    } else {
                        ops::select_in_runs(runs, values)
                    }
                } else if sorted {
                    bump(&self.stats.sorted_in_selects);
                    ops::select_in_sorted(child.col(*col), values)
                } else {
                    self.par_select_in(ctx.budget, child.col(*col), values)
                };
                self.par_gather(ctx.budget, &child, &sel)?
            }
            Plan::Join {
                left,
                right,
                left_col,
                right_col,
            } => {
                let la = left.arity();
                let left_needed = low_bits(needed, la) | bit(*left_col);
                let right_needed = (needed >> la) | bit(*right_col);
                let l = self.exec(left, left_needed, ctx)?;
                let r = self.exec(right, right_needed, ctx)?;
                // Both join columns derived-sorted: the linear merge join
                // the sorted layouts were built for. Otherwise hash.
                let use_merge = self.plan_props(left, ctx.props).sorted_on(*left_col)
                    && self.plan_props(right, ctx.props).sorted_on(*right_col);
                let (lsel, rsel) = if use_merge {
                    bump(&self.stats.merge_joins);
                    let lruns = l.col_runs(*left_col);
                    let rruns = r.col_runs(*right_col);
                    if lruns.is_some() || rruns.is_some() {
                        // At least one side is run-encoded: the run×block
                        // merge join advances whole runs on that side.
                        bump(&self.stats.run_kernel_dispatches);
                        let lv = match lruns {
                            Some(runs) => RunsView::Runs(runs),
                            None => RunsView::Flat(l.col(*left_col)),
                        };
                        let rv = match rruns {
                            Some(runs) => RunsView::Runs(runs),
                            None => RunsView::Flat(r.col(*right_col)),
                        };
                        self.par_merge_join_runs(ctx.budget, lv, rv)?
                    } else {
                        self.par_merge_join(ctx.budget, l.col(*left_col), r.col(*right_col))?
                    }
                } else {
                    bump(&self.stats.hash_joins);
                    self.par_hash_join(
                        ctx.budget,
                        self.flat(&l, *left_col),
                        self.flat(&r, *right_col),
                    )?
                };
                // The join columns were materialized for probing, but the
                // parent may never read them — drop those before the
                // gather instead of copying (or run-expanding) them into
                // the output. The root executes under a full mask, so
                // result columns are never pruned here.
                let mut l = l;
                if low_bits(needed, la) & bit(*left_col) == 0 {
                    l.take_col(*left_col);
                }
                let mut r = r;
                if (needed >> la) & bit(*right_col) == 0 {
                    r.take_col(*right_col);
                }
                // The derivation claims run columns survive only a merge
                // join's *left* side; the right gather (and both sides of
                // a hash join, whose probe selection can happen to be
                // monotone) must come out flat so no run column is ever
                // produced unclaimed.
                let lg = self.par_gather_opts(ctx.budget, &l, &lsel, use_merge)?;
                let rg = self.par_gather_opts(ctx.budget, &r, &rsel, false)?;
                let mut cols = lg.into_cols();
                cols.extend(rg.into_cols());
                Chunk::from_optional(lsel.len(), cols)
            }
            Plan::LeapfrogJoin { inputs, cols } => {
                // The multi-way star kernel requires every input
                // derived-sorted on its key column; an input that lost
                // its order (or the sorted layer being off) sends the
                // whole node through its equivalent binary-join fold.
                let dispatch = self.sorted_paths
                    && inputs
                        .iter()
                        .zip(cols)
                        .all(|(inp, &c)| self.plan_props(inp, ctx.props).sorted_on(c));
                if !dispatch {
                    return self.exec(&leapfrog_fold(inputs, cols), needed, ctx);
                }
                bump(&self.stats.leapfrog_dispatches);
                let mut children = Vec::with_capacity(inputs.len());
                let mut off = 0usize;
                for (inp, &c) in inputs.iter().zip(cols) {
                    let a = inp.arity();
                    children.push(self.exec(inp, low_bits(needed >> off, a) | bit(c), ctx)?);
                    off += a;
                }
                let sels = {
                    let keys: Vec<RunsView<'_>> = children
                        .iter()
                        .zip(cols)
                        .map(|(ch, &c)| match ch.col_runs(c) {
                            Some(runs) => RunsView::Runs(runs),
                            None => RunsView::Flat(ch.col(c)),
                        })
                        .collect();
                    ops::leapfrog_join(&keys)
                };
                let len = sels[0].len();
                // The kernel materialized one selection vector per input.
                ctx.budget.charge(4 * (sels.len() as u64) * len as u64)?;
                let mut out: Vec<Option<ColData>> = Vec::new();
                let mut off = 0usize;
                for ((mut ch, sel), &c) in children.into_iter().zip(&sels).zip(cols) {
                    let a = ch.arity();
                    // Key columns the parent never reads are dropped
                    // before the gather (the binary join's key-drop
                    // rule, applied per input).
                    if (needed >> off) & bit(c) == 0 {
                        ch.take_col(c);
                    }
                    // The derivation claims no run columns on leapfrog
                    // output — every gather comes out flat.
                    out.extend(
                        self.par_gather_opts(ctx.budget, &ch, sel, false)?
                            .into_cols(),
                    );
                    off += a;
                }
                Chunk::from_optional(len, out)
            }
            Plan::Project { input, cols } => {
                let mut child_needed = 0u64;
                let mut uses = vec![0u32; input.arity()];
                for (out_i, &in_c) in cols.iter().enumerate() {
                    if needed & bit(out_i) != 0 {
                        child_needed |= bit(in_c);
                        uses[in_c] += 1;
                    }
                }
                let child = self.exec(input, child_needed, ctx)?;
                let len = child.len();
                let mut child_cols = child.into_cols();
                let out: Vec<Option<ColData>> = cols
                    .iter()
                    .enumerate()
                    .map(|(out_i, &in_c)| {
                        if needed & bit(out_i) == 0 {
                            return None;
                        }
                        uses[in_c] -= 1;
                        if uses[in_c] == 0 {
                            child_cols[in_c].take() // move on last use
                        } else {
                            child_cols[in_c].clone()
                        }
                    })
                    .collect();
                Chunk::from_optional(len, out)
            }
            Plan::GroupCount { input, keys } => {
                let mut child_needed = 0u64;
                for &k in keys {
                    child_needed |= bit(k);
                }
                let child = self.exec(input, child_needed, ctx)?;
                // Input sorted by exactly the grouping keys: groups are
                // contiguous runs — aggregate linearly, no hash table.
                let runs = self.plan_props(input, ctx.props).sorted_by_prefix(keys);
                match (keys.len(), runs) {
                    (1, true) => {
                        bump(&self.stats.sorted_group_counts);
                        // A run-encoded key column IS the aggregate: keys
                        // are the run values, counts the run lengths.
                        let (k, c) = if let Some(key_runs) = child.col_runs(keys[0]) {
                            bump(&self.stats.run_kernel_dispatches);
                            self.par_group_count_sorted_runs(key_runs)
                        } else {
                            self.par_group_count_sorted_1(child.col(keys[0]))
                        };
                        Chunk::from_cols(vec![k, c])
                    }
                    (1, false) => {
                        bump(&self.stats.hash_group_counts);
                        let (k, c) =
                            self.par_group_count_1(ctx.budget, self.flat(&child, keys[0]))?;
                        Chunk::from_cols(vec![k, c])
                    }
                    (2, true) => {
                        bump(&self.stats.sorted_group_counts);
                        let (k0, k1, c) = if let Some(key_runs) = child.col_runs(keys[0]) {
                            bump(&self.stats.run_kernel_dispatches);
                            self.par_group_count_sorted_2_runs(key_runs, self.flat(&child, keys[1]))
                        } else {
                            self.par_group_count_sorted_2(child.col(keys[0]), child.col(keys[1]))
                        };
                        Chunk::from_cols(vec![k0, k1, c])
                    }
                    (2, false) => {
                        bump(&self.stats.hash_group_counts);
                        let (k0, k1, c) = self.par_group_count_2(
                            ctx.budget,
                            self.flat(&child, keys[0]),
                            self.flat(&child, keys[1]),
                        )?;
                        Chunk::from_cols(vec![k0, k1, c])
                    }
                    _ => {
                        bump(&self.stats.hash_group_counts);
                        self.group_count_generic(ctx.budget, &child, keys)?
                    }
                }
            }
            Plan::HavingCountGt { input, min } => {
                let count_col = input.arity() - 1;
                let child = self.exec(input, needed | bit(count_col), ctx)?;
                let data = child.col(count_col);
                let sel: Vec<u32> = (0..child.len() as u32)
                    .filter(|&i| data[i as usize] > *min)
                    .collect();
                child.gather(&sel)
            }
            Plan::UnionAll { inputs } => {
                // The union always *materializes* its output — this is the
                // per-table copy/append overhead vertically-partitioned
                // plans pay on property-unbound accesses (§4.2).
                let arity = plan.arity();
                let mut acc: Vec<Option<Vec<u64>>> = (0..arity)
                    .map(|i| {
                        if needed & bit(i) != 0 {
                            Some(Vec::new())
                        } else {
                            None
                        }
                    })
                    .collect();
                let mut len = 0usize;
                for inp in inputs {
                    let c = self.exec(inp, needed, ctx)?;
                    // Each appended input is a fresh copy — the
                    // materialization cost unions always pay — so charge
                    // it before the copy happens.
                    ctx.budget
                        .charge(8 * (plan.arity() as u64) * c.len() as u64)?;
                    len += c.len();
                    let cols = c.into_cols();
                    for (i, acc_col) in acc.iter_mut().enumerate() {
                        if let Some(a) = acc_col {
                            if let Some(src) = &cols[i] {
                                // A run-encoded input appends run by run
                                // (a fill per run — cheaper than the flat
                                // copy, and no intermediate expansion).
                                if let Some(runs) = src.as_runs() {
                                    a.reserve(runs.len());
                                    for (v, r) in runs.runs() {
                                        a.resize(a.len() + r.len(), v);
                                    }
                                } else {
                                    a.extend_from_slice(src.as_slice());
                                }
                            }
                        }
                    }
                }
                Chunk::from_optional(
                    len,
                    acc.into_iter().map(|c| c.map(ColData::Owned)).collect(),
                )
            }
            Plan::Distinct { input } => {
                let props = self.plan_props(input, ctx.props);
                // Derived-distinct input: nothing to eliminate — pass the
                // child through (only the columns the parent needs).
                if props.distinct {
                    bump(&self.stats.distinct_passthroughs);
                    return self.exec(input, needed, ctx);
                }
                // Row-level distinct requires every column, flat (the
                // run-preserving gather below still keeps run columns
                // run-encoded in the *output*).
                let child = self.exec(input, full_mask(input.arity()), ctx)?;
                let cols: Vec<&[u64]> = (0..child.arity()).map(|i| self.flat(&child, i)).collect();
                let sel = if props.covers_all_columns(input.arity()) {
                    // Fully sorted input: duplicates are adjacent.
                    bump(&self.stats.sorted_distincts);
                    self.par_distinct_sorted(&cols, child.len())
                } else {
                    bump(&self.stats.sort_distincts);
                    self.par_distinct_rows(ctx.budget, &cols, child.len())?
                };
                drop(cols);
                self.par_gather(ctx.budget, &child, &sel)?
            }
        };
        // Post-operator budget check *before* the shadow validator: a
        // latched budget means the kernels above may have early-outed with
        // partial output, which must surface as Cancelled, not as a
        // property-claim violation on garbage.
        ctx.budget.check()?;
        #[cfg(debug_assertions)]
        self.shadow_validate(plan, ctx.props, &chunk);
        Ok(chunk)
    }

    /// Debug-mode shadow validator: spot-checks the [`PhysProps`] claims
    /// the dispatcher relied on against the operator's *actual* output.
    /// Compiled only under `debug_assertions`; every test-suite execution
    /// therefore cross-examines the property derivation at every plan
    /// node.
    ///
    /// Checks, in order:
    /// * output arity matches the plan (the join key-drop rule: pruned
    ///   columns stay *absent at their position*, never shifting the
    ///   schema),
    /// * the run-encoding converse invariant — a column is only ever
    ///   produced run-encoded at a claimed position,
    /// * with the sorted layer active (claims are dispatch-relevant only
    ///   then): the claimed sort key really is lexicographically
    ///   non-decreasing, and a claimed-distinct output really has no
    ///   duplicate rows. Both checks sample adjacent row pairs (capped)
    ///   and read run columns through their headers, so no run column is
    ///   expanded early — the expansion accounting the compressed-
    ///   execution stats assert on stays untouched.
    #[cfg(debug_assertions)]
    fn shadow_validate(&self, plan: &Plan, ctx: &PropsContext, chunk: &Chunk) {
        assert_eq!(
            chunk.arity(),
            plan.arity(),
            "shadow validator: output arity diverges from the plan at {}",
            plan.explain().lines().next().unwrap_or_default()
        );
        let props = self.plan_props(plan, ctx);
        // Converse run invariant: runs only at claimed positions. With
        // the sorted layer off, `plan_props` claims nothing — and run
        // emission is off too, so nothing may come out run-encoded.
        for i in 0..chunk.arity() {
            if chunk.col_is_runs(i) {
                assert!(
                    props.run_encoded.contains(&i),
                    "shadow validator: column {i} is run-encoded but unclaimed at {}",
                    plan.explain().lines().next().unwrap_or_default()
                );
            }
        }
        if !self.sorted_paths {
            return;
        }
        // Read a cell without expanding a run column (expansion would
        // corrupt the runs_expanded accounting the stats tests pin).
        let cell = |col: usize, row: usize| match chunk.col_runs(col) {
            Some(runs) => runs.value_at(row),
            None => chunk.col(col)[row],
        };
        let len = chunk.len();
        if let Some(key) = &props.sorted_by {
            let present: Vec<usize> = key
                .iter()
                .take_while(|&&k| chunk.has_col(k))
                .copied()
                .collect();
            if !present.is_empty() && len > 1 {
                // All adjacent pairs for small outputs, an even sample
                // for large ones — enough to catch a wrong dispatch
                // without quadratic (or even full-linear) debug cost.
                const MAX_PAIRS: usize = 1 << 12;
                let step = ((len - 1) / MAX_PAIRS).max(1);
                let mut row = 0;
                while row + 1 < len {
                    // Lexicographic comparison on the present key prefix.
                    let mut lex_ok = true;
                    for &k in &present {
                        match cell(k, row).cmp(&cell(k, row + 1)) {
                            std::cmp::Ordering::Less => break,
                            std::cmp::Ordering::Equal => {}
                            std::cmp::Ordering::Greater => {
                                lex_ok = false;
                                break;
                            }
                        }
                    }
                    assert!(
                        lex_ok,
                        "shadow validator: claimed sorted_by={key:?} violated between \
                         rows {row} and {} at {}",
                        row + 1,
                        plan.explain().lines().next().unwrap_or_default()
                    );
                    row += step;
                }
            }
        }
        if props.distinct
            && len > 1
            && len <= 1 << 12
            && (0..chunk.arity()).all(|i| chunk.has_col(i))
        {
            let mut rows: Vec<Vec<u64>> = (0..len)
                .map(|r| (0..chunk.arity()).map(|c| cell(c, r)).collect())
                .collect();
            rows.sort_unstable();
            let before = rows.len();
            rows.dedup();
            assert_eq!(
                before,
                rows.len(),
                "shadow validator: claimed distinct output contains duplicates at {}",
                plan.explain().lines().next().unwrap_or_default()
            );
        }
    }

    /// Scans the triples table: binary-search the bound sort-order prefix,
    /// filter remaining bounds, materialize needed logical columns.
    fn scan_triples(
        &self,
        budget: &QueryBudget,
        s: Option<Id>,
        p: Option<Id>,
        o: Option<Id>,
        needed: u64,
    ) -> Result<Chunk, EngineError> {
        let t = self
            .triple
            .as_ref()
            .ok_or(EngineError::MissingTripleStore)?;
        let bounds = [s, p, o];
        let perm = t.order.permutation();

        // Bound columns that form a prefix of the clustering order can be
        // resolved by binary search; the rest become residual filters.
        let mut range = 0..t.cols[0].len();
        let mut residual: Vec<(usize, u64)> = Vec::new();
        let mut in_prefix = true;
        for &key_col in &perm {
            match (in_prefix, bounds[key_col]) {
                (true, Some(v)) => {
                    let col = &t.cols[key_col];
                    // Leading clustered column with RLE run headers:
                    // resolve the bound from the headers directly. Gated
                    // on the sorted layer so the hash baseline measures
                    // the plain decompressed binary search.
                    if self.sorted_paths
                        && range == (0..col.len())
                        && col.is_sorted()
                        && col.has_runs()
                    {
                        bump(&self.stats.rle_selects);
                        range = col.eq_range(v);
                    } else {
                        // Within the current range, this sort column is
                        // sorted.
                        let data = col.read();
                        let slice = &data[range.clone()];
                        let lo = range.start + slice.partition_point(|&x| x < v);
                        let hi = range.start + slice.partition_point(|&x| x <= v);
                        range = lo..hi;
                    }
                }
                (true, None) => in_prefix = false,
                (false, Some(v)) => residual.push((key_col, v)),
                (false, None) => {}
            }
        }

        // Residual filters over the range — one fused morsel-parallel
        // pass over every residual column at once.
        let sel: Option<Vec<u32>> = (!residual.is_empty()).then(|| {
            let cols: Vec<&[u64]> = residual.iter().map(|&(c, _)| t.cols[c].read()).collect();
            let vals: Vec<u64> = residual.iter().map(|&(_, v)| v).collect();
            self.par_range_filter(budget, range.clone(), move |i| {
                cols.iter().zip(&vals).all(|(d, &v)| d[i] == v)
            })
        });

        // Pending inserts inside this scan's bounds — the unsorted tail a
        // write-store union appends.
        let tail: Vec<Triple> = self
            .write
            .inserts
            .iter()
            .filter(|t| {
                s.is_none_or(|v| t.s == v)
                    && p.is_none_or(|v| t.p == v)
                    && o.is_none_or(|v| t.o == v)
            })
            .copied()
            .collect();

        // Union path only when the write store can actually affect this
        // scan (a tombstone that could fall in its bounds, or matching
        // pending inserts): the read-store rows minus tombstones, then
        // the tail (the props derivation has already downgraded this
        // scan's claimed order). Only the tombstone check forces all
        // three columns to be read — it needs the full (s, p, o) key;
        // with pending inserts alone, projection pushdown and BAT sharing
        // keep working below.
        let tombstones_possible = match p {
            Some(v) => self.write.delete_props.contains(&v),
            None => !self.write.deletes.is_empty(),
        };
        if !tail.is_empty() || tombstones_possible {
            bump(&self.stats.delta_union_scans);
            let mut idx: Vec<u32> = match sel {
                Some(s) => s,
                None => (range.start as u32..range.end as u32).collect(),
            };
            if tombstones_possible {
                let sv = t.cols[0].read();
                let pv = t.cols[1].read();
                let ov = t.cols[2].read();
                idx.retain(|&i| {
                    let i = i as usize;
                    !self
                        .write
                        .deletes
                        .contains(&Triple::new(sv[i], pv[i], ov[i]))
                });
            }
            let out_len = idx.len() + tail.len();
            let cols: Vec<Option<ColData>> = (0..3)
                .map(|c| {
                    if needed & bit(c) == 0 {
                        return None;
                    }
                    let base = t.cols[c].read();
                    let mut v = self.par_gather_u64(base, &idx);
                    v.extend(tail.iter().map(|t| t.as_row()[c]));
                    Some(ColData::Owned(v))
                })
                .collect();
            return Ok(Chunk::from_optional(out_len, cols));
        }

        let out_len = sel.as_ref().map_or(range.len(), Vec::len);
        let full = range == (0..t.cols[0].len()) && sel.is_none();
        let cols: Vec<Option<ColData>> = (0..3)
            .map(|c| {
                if needed & bit(c) == 0 {
                    return None;
                }
                // The RLE-stored lead column comes out run-encoded —
                // compressed execution starts at the scan, charging only
                // the compressed segment and materializing nothing. Only
                // scans with no bound at all emit runs (mirroring the
                // derived `run_encoded` claim exactly — a bound scan that
                // happens to cover the whole range must still come out
                // flat, or the run column would be unclaimed): a
                // filtered or range-restricted scan's output collapses
                // the runs, and the flat path is the better
                // representation there anyway.
                if c == perm[0] && self.run_emission() && full && bounds.iter().all(Option::is_none)
                {
                    if let Some(runs) = t.cols[c].read_runs().filter(|r| Self::emit_worthy(r)) {
                        return Some(self.emit_runs(runs));
                    }
                }
                if full {
                    // Unbounded scan: hand out the base column (BAT
                    // sharing) instead of copying it.
                    return Some(ColData::Shared(t.cols[c].read_shared()));
                }
                let data = t.cols[c].read();
                Some(ColData::Owned(match &sel {
                    None => data[range.clone()].to_vec(),
                    Some(s) => self.par_gather_u64(data, s),
                }))
            })
            .collect();
        Ok(Chunk::from_optional(out_len, cols))
    }

    /// Scans one property table (sorted by subject, then object).
    fn scan_property(
        &self,
        budget: &QueryBudget,
        property: Id,
        s: Option<Id>,
        o: Option<Id>,
        emit_property: bool,
        needed: u64,
    ) -> Result<Chunk, EngineError> {
        if !self.vertical_loaded {
            return Err(EngineError::MissingVerticalLayout);
        }
        let arity = if emit_property { 3 } else { 2 };

        // Pending inserts for this property that satisfy the scan bounds —
        // the unsorted tail a non-empty write store unions in.
        let tail: Vec<(u64, u64)> = match self.write.by_prop.get(&property) {
            Some(rows) => rows
                .iter()
                .filter(|&&(rs, ro)| s.is_none_or(|v| rs == v) && o.is_none_or(|v| ro == v))
                .copied()
                .collect(),
            None => Vec::new(),
        };

        let Some(t) = self.props.get(&property) else {
            // A property with no sorted table (never loaded, or only just
            // inserted into): the pending tail is the whole answer.
            if !tail.is_empty() {
                bump(&self.stats.delta_union_scans);
            }
            let cols = (0..arity)
                .map(|i| {
                    (needed & bit(i) != 0).then(|| {
                        ColData::Owned(match (i, arity) {
                            (0, _) => tail.iter().map(|&(rs, _)| rs).collect(),
                            (1, 3) => vec![property; tail.len()],
                            _ => tail.iter().map(|&(_, ro)| ro).collect(),
                        })
                    })
                })
                .collect();
            return Ok(Chunk::from_optional(tail.len(), cols));
        };
        let o_pos = arity - 1;

        let mut range = 0..t.s.len();
        if let Some(v) = s {
            // Subject bound: RLE run headers when compressed (gated on
            // the sorted layer — the hash baseline binary-searches the
            // decompressed values).
            if self.sorted_paths && t.s.has_runs() {
                bump(&self.stats.rle_selects);
                range = t.s.eq_range(v);
            } else {
                let data = t.s.read();
                let lo = data.partition_point(|&x| x < v);
                let hi = data.partition_point(|&x| x <= v);
                range = lo..hi;
            }
            if let Some(ov) = o {
                // Within one subject, objects are sorted.
                let od = t.o.read();
                let slice = &od[range.clone()];
                let lo2 = range.start + slice.partition_point(|&x| x < ov);
                let hi2 = range.start + slice.partition_point(|&x| x <= ov);
                range = lo2..hi2;
            }
        }

        let mut sel: Option<Vec<u32>> = None;
        if s.is_none() {
            if let Some(ov) = o {
                let od = t.o.read();
                sel = Some(self.par_range_filter(budget, range.clone(), move |i| od[i] == ov));
            }
        }

        // Union path only when the write store can affect this scan (a
        // tombstone on this property, or matching pending inserts): hide
        // tombstoned read-store rows, append the pending tail. Only the
        // tombstone check needs both columns read; with pending inserts
        // alone, projection pushdown and BAT sharing keep working below.
        let tombstones_possible = self.write.delete_props.contains(&property);
        if !tail.is_empty() || tombstones_possible {
            bump(&self.stats.delta_union_scans);
            let mut idx: Vec<u32> = match sel {
                Some(s) => s,
                None => (range.start as u32..range.end as u32).collect(),
            };
            if tombstones_possible {
                let sv = t.s.read();
                let ov = t.o.read();
                idx.retain(|&i| {
                    let i = i as usize;
                    !self
                        .write
                        .deletes
                        .contains(&Triple::new(sv[i], property, ov[i]))
                });
            }
            let out_len = idx.len() + tail.len();
            let mut cols: Vec<Option<ColData>> = vec![None; arity];
            if needed & bit(0) != 0 {
                let sv = t.s.read();
                let mut v = self.par_gather_u64(sv, &idx);
                v.extend(tail.iter().map(|&(rs, _)| rs));
                cols[0] = Some(ColData::Owned(v));
            }
            if emit_property && needed & bit(1) != 0 {
                cols[1] = Some(ColData::Owned(vec![property; out_len]));
            }
            if needed & bit(o_pos) != 0 {
                let ov = t.o.read();
                let mut v = self.par_gather_u64(ov, &idx);
                v.extend(tail.iter().map(|&(_, ro)| ro));
                cols[o_pos] = Some(ColData::Owned(v));
            }
            return Ok(Chunk::from_optional(out_len, cols));
        }

        let out_len = sel.as_ref().map_or(range.len(), Vec::len);
        let full = range == (0..t.s.len()) && sel.is_none();
        let materialize = |col: &Column| -> ColData {
            if full {
                return ColData::Shared(col.read_shared());
            }
            let data = col.read();
            ColData::Owned(match &sel {
                None => data[range.clone()].to_vec(),
                Some(s) => self.par_gather_u64(data, s),
            })
        };

        let mut cols: Vec<Option<ColData>> = vec![None; arity];
        if needed & bit(0) != 0 {
            // The RLE-stored subject column comes out run-encoded:
            // compressed execution starts at the scan, charging only the
            // compressed segment and materializing nothing. As in
            // `scan_triples`, only scans with no bound at all emit runs
            // (the exact shape the derived `run_encoded` claim covers —
            // a bound scan that happens to cover the whole range must
            // still come out flat).
            let emit = (self.run_emission() && full && s.is_none() && o.is_none())
                .then(|| t.s.read_runs().filter(|r| Self::emit_worthy(r)))
                .flatten();
            cols[0] = Some(match emit {
                Some(runs) => self.emit_runs(runs),
                None => materialize(&t.s),
            });
        }
        if emit_property && needed & bit(1) != 0 {
            cols[1] = Some(ColData::Owned(vec![property; out_len]));
        }
        if needed & bit(o_pos) != 0 {
            cols[o_pos] = Some(materialize(&t.o));
        }
        Ok(Chunk::from_optional(out_len, cols))
    }
}

/// Morsel-parallel operator internals.
///
/// Every helper here obeys one contract: the output is **bit-identical to
/// the sequential kernel** regardless of pool width, because morsel (or
/// value-aligned segment) outputs are merged in morsel order at the
/// barrier and order-insensitive merges (hash-aggregation maps) are
/// sorted before emission. Partitioning therefore never invalidates a
/// derived physical property.
impl ColumnEngine {
    /// Flat view of a chunk column, counting the event when the column
    /// arrived run-encoded: a flat consumer (e.g. a hash kernel) ends
    /// compressed execution for that column. The expansion itself is
    /// cached and shared, so repeated flat access expands at most once.
    fn flat<'a>(&self, chunk: &'a Chunk, i: usize) -> &'a [u64] {
        if chunk.col_expansion_pending(i) {
            bump(&self.stats.runs_expanded);
        }
        chunk.col(i)
    }

    /// Wraps a stored column's run representation as scan output, applying
    /// the scan's row restriction run-preservingly and accounting the
    /// compressed bytes actually charged versus the logical bytes a flat
    /// materialization would have cost.
    fn emit_runs(&self, runs: Arc<RunCol>) -> ColData {
        bump(&self.stats.run_scans);
        self.stats
            .scan_bytes_compressed
            .fetch_add(runs.compressed_bytes(), Ordering::Relaxed);
        self.stats
            .scan_bytes_logical
            .fetch_add(runs.len() as u64 * 8, Ordering::Relaxed);
        ColData::runs(runs)
    }

    /// Whether a run column is long-run enough that branchy run-at-a-time
    /// loops beat the vectorized flat loops on *output-dense* work
    /// (gathers, non-selective predicates). Aggregation off run lengths
    /// and merge-join walks win at any compressing run length and are not
    /// gated by this.
    fn runs_pay_dense(runs: &RunCol) -> bool {
        runs.len() >= 8 * runs.run_count()
    }

    /// Whether a stored run column is worth emitting as the execution
    /// representation at all. Storage compression engages at average run
    /// length 2 (that is where the bytes shrink), but the run *kernels*
    /// only collectively beat the vectorized flat loops from roughly
    /// average run length 5 — below that, scans hand out the flat
    /// zero-copy column (still charged at the compressed segment size)
    /// and only the RLE run-header selects exploit the headers.
    fn emit_worthy(runs: &RunCol) -> bool {
        runs.len() >= 5 * runs.run_count()
    }

    /// Counts one partitioned batch of `parts` morsels in the stats.
    fn note_batch(&self, parts: usize) {
        if parts > 1 {
            bump(&self.stats.parallel_tasks);
            self.stats
                .morsels
                .fetch_add(parts as u64, Ordering::Relaxed);
        }
    }

    /// Equality/inequality selection, morsel-parallel over the one
    /// [`ops::select_cmp`] kernel (same shape as [`Self::par_select_in`]).
    /// Morsels observe the budget's cancellation token: once it latches,
    /// remaining morsels return empty (the caller's post-barrier
    /// [`QueryBudget::check`] turns the latch into the typed error).
    fn par_select_cmp(
        &self,
        budget: &QueryBudget,
        data: &[u64],
        value: u64,
        negate: bool,
    ) -> Vec<u32> {
        let parts = partitions(data.len());
        if parts <= 1 {
            return ops::select_cmp(data, value, negate);
        }
        self.note_batch(parts);
        concat_u32(self.pool.run_with(
            parts,
            || (),
            |_, m| {
                if budget.latched() {
                    return Vec::new();
                }
                let r = morsel_range(data.len(), parts, m);
                let mut sel = ops::select_cmp(&data[r.clone()], value, negate);
                for s in &mut sel {
                    *s += r.start as u32;
                }
                sel
            },
        ))
    }

    /// Positions in `range` (global indices) passing `keep`,
    /// morsel-parallel — the fused residual-filter pass of base scans.
    /// Cancel-aware per morsel (see [`Self::par_select_cmp`]).
    fn par_range_filter(
        &self,
        budget: &QueryBudget,
        range: std::ops::Range<usize>,
        keep: impl Fn(usize) -> bool + Sync,
    ) -> Vec<u32> {
        let len = range.len();
        let parts = partitions(len);
        if parts <= 1 {
            return (range.start as u32..range.end as u32)
                .filter(|&i| keep(i as usize))
                .collect();
        }
        self.note_batch(parts);
        concat_u32(self.pool.run_with(
            parts,
            || (),
            |_, m| {
                if budget.latched() {
                    return Vec::new();
                }
                let r = morsel_range(len, parts, m);
                (range.start + r.start..range.start + r.end)
                    .filter(|&i| keep(i))
                    .map(|i| i as u32)
                    .collect::<Vec<u32>>()
            },
        ))
    }

    /// `IN`-list selection, morsel-parallel over [`ops::select_in`].
    /// Cancel-aware per morsel (see [`Self::par_select_cmp`]).
    fn par_select_in(&self, budget: &QueryBudget, data: &[u64], values: &[u64]) -> Vec<u32> {
        let parts = partitions(data.len());
        if parts <= 1 {
            return ops::select_in(data, values);
        }
        self.note_batch(parts);
        concat_u32(self.pool.run_with(
            parts,
            || (),
            |_, m| {
                if budget.latched() {
                    return Vec::new();
                }
                let r = morsel_range(data.len(), parts, m);
                let mut sel = ops::select_in(&data[r.clone()], values);
                for s in &mut sel {
                    *s += r.start as u32;
                }
                sel
            },
        ))
    }

    /// Appends gather tasks for one output column to a shared batch:
    /// workers write disjoint slices of the preallocated output in place
    /// (no second copy at the barrier).
    fn push_gather_tasks<'a>(
        tasks: &mut Vec<Box<dyn FnOnce() + Send + 'a>>,
        data: &'a [u64],
        idx: &'a [u32],
        out: &'a mut [u64],
        parts: usize,
    ) {
        let mut rest = out;
        for m in 0..parts {
            let r = morsel_range(idx.len(), parts, m);
            let (slot, tail) = rest.split_at_mut(r.len());
            rest = tail;
            let ids = &idx[r];
            tasks.push(Box::new(move || {
                for (o, &i) in slot.iter_mut().zip(ids) {
                    *o = data[i as usize];
                }
            }));
        }
    }

    /// The run-source form of [`Self::push_gather_tasks`]: workers write
    /// disjoint flat output slices straight from the run headers
    /// ([`RunCol::gather_flat`]) — one comparison and one store per
    /// element, never materializing the whole column.
    fn push_run_gather_tasks<'a>(
        tasks: &mut Vec<Box<dyn FnOnce() + Send + 'a>>,
        runs: &'a RunCol,
        idx: &'a [u32],
        out: &'a mut [u64],
        parts: usize,
    ) {
        let mut rest = out;
        for m in 0..parts {
            let r = morsel_range(idx.len(), parts, m);
            let (slot, tail) = rest.split_at_mut(r.len());
            rest = tail;
            let ids = &idx[r];
            tasks.push(Box::new(move || runs.gather_flat(ids, slot)));
        }
    }

    /// `idx.iter().map(|&i| data[i as usize]).collect()`, morsel-parallel.
    fn par_gather_u64(&self, data: &[u64], idx: &[u32]) -> Vec<u64> {
        let parts = partitions(idx.len());
        if parts <= 1 {
            return idx.iter().map(|&i| data[i as usize]).collect();
        }
        self.note_batch(parts);
        let mut out = vec![0u64; idx.len()];
        let mut tasks: Vec<Box<dyn FnOnce() + Send>> = Vec::with_capacity(parts);
        Self::push_gather_tasks(&mut tasks, data, idx, &mut out, parts);
        self.pool.run_once(tasks);
        out
    }

    /// [`Chunk::gather`], morsel-parallel — every present column's morsel
    /// tasks run in **one** pool batch (one spawn/join, arity-independent),
    /// so a worker that finishes one column's morsels early pulls into the
    /// next column's. Run-encoded columns with a monotone selection vector
    /// gather run-preservingly instead (O(sel + runs) sequential work,
    /// keeping them run-encoded); an unordered selection expands them
    /// (counted) and gathers flat.
    fn par_gather(
        &self,
        budget: &QueryBudget,
        chunk: &Chunk,
        sel: &[u32],
    ) -> Result<Chunk, EngineError> {
        self.par_gather_opts(budget, chunk, sel, true)
    }

    /// [`Self::par_gather`] with an explicit run-preservation policy.
    /// `preserve_runs: false` guarantees an all-flat output even when the
    /// selection happens to be monotone — the form join output gathers
    /// use, because the `run_encoded` derivation claims no run columns
    /// survive a join's right side (or a hash join at all), and a
    /// run-encoded column must never be produced where unclaimed. The
    /// flattening is still run-sourced ([`RunCol::gather_flat`]) for
    /// monotone selections: no whole-column expansion.
    fn par_gather_opts(
        &self,
        budget: &QueryBudget,
        chunk: &Chunk,
        sel: &[u32],
        preserve_runs: bool,
    ) -> Result<Chunk, EngineError> {
        // The gather materializes one output value per selected row per
        // present column — charge it before allocating, so an
        // over-budget materialization aborts instead of allocating.
        let present = (0..chunk.arity()).filter(|&i| chunk.has_col(i)).count();
        budget.charge(8 * (present as u64) * sel.len() as u64)?;
        let any_runs = (0..chunk.arity()).any(|i| chunk.col_is_runs(i));
        let monotone = any_runs && sel.windows(2).all(|w| w[0] <= w[1]);
        let parts = partitions(sel.len());
        if parts <= 1 && (!any_runs || (monotone && preserve_runs)) {
            // The sequential [`Chunk::gather`] applies the same
            // run-preservation rule for monotone selections.
            return Ok(chunk.gather(sel));
        }

        // Per-column plan. Everything — flat gathers, run-sourced flat
        // gathers, and run-preserving piece gathers — lands in ONE task
        // batch (one spawn/join, arity-independent), so a worker that
        // finishes one column's morsels pulls into the next column's.
        // Run columns stay run-encoded only where the policy allows and
        // the representation pays for dense output: long runs, or a
        // selection sparse enough that the collapsed output stays far
        // below flat size. Each piece gathers its slice of the selection
        // (starting at a binary-searched run, so pieces don't re-walk
        // the prefix); the barrier concatenates, merging boundary runs.
        // A non-monotone (hash-shape) selection needs random access and
        // expands the column (counted).
        let keep: Vec<bool> = (0..chunk.arity())
            .map(|i| match chunk.col_runs(i) {
                Some(runs) => {
                    preserve_runs
                        && monotone
                        && (Self::runs_pay_dense(runs) || sel.len() * 4 <= runs.len())
                }
                None => false,
            })
            .collect();
        let mut piece_stores: Vec<Option<Vec<RunCol>>> = (0..chunk.arity())
            .map(|i| keep[i].then(|| vec![RunCol::default(); parts]))
            .collect();
        let mut outs: Vec<Option<Vec<u64>>> = (0..chunk.arity())
            .map(|i| (chunk.has_col(i) && !keep[i]).then(|| vec![0u64; sel.len()]))
            .collect();
        let mut tasks: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        for (i, out) in outs.iter_mut().enumerate() {
            if let Some(out) = out {
                match chunk.col_runs(i) {
                    Some(runs) if monotone => {
                        Self::push_run_gather_tasks(&mut tasks, runs, sel, out, parts);
                    }
                    Some(_) => {
                        if chunk.col_expansion_pending(i) {
                            bump(&self.stats.runs_expanded);
                        }
                        Self::push_gather_tasks(&mut tasks, chunk.col(i), sel, out, parts);
                    }
                    None => Self::push_gather_tasks(&mut tasks, chunk.col(i), sel, out, parts),
                }
            }
        }
        for (i, store) in piece_stores.iter_mut().enumerate() {
            if let Some(store) = store {
                let runs = chunk.col_runs(i).expect("keep implies runs");
                for (m, slot) in store.iter_mut().enumerate() {
                    let ids = &sel[morsel_range(sel.len(), parts, m)];
                    tasks.push(Box::new(move || *slot = runs.gather(ids)));
                }
            }
        }
        self.note_batch(tasks.len());
        self.pool.run_once(tasks);
        Ok(Chunk::from_optional(
            sel.len(),
            piece_stores
                .into_iter()
                .zip(outs)
                .map(|(pieces, flat)| {
                    pieces
                        .map(|p| ColData::runs(Arc::new(RunCol::concat(&p))))
                        .or(flat.map(ColData::Owned))
                })
                .collect(),
        ))
    }

    /// Hash equi-join with a hash-partitioned build side and a
    /// morsel-partitioned probe side. Pair stream identical to
    /// [`ops::hash_join`]: per-key chains are built in the same order and
    /// probe morsels concatenate in probe order.
    ///
    /// Governance: the build table is charged to the budget up front and
    /// probe morsels charge their pair output incrementally (in 1 MiB
    /// slabs), so a cross-product-shaped key distribution trips the
    /// memory limit *during* the blow-up. A latched budget short-circuits
    /// remaining morsels; the post-barrier check surfaces the typed
    /// error.
    fn par_hash_join(
        &self,
        budget: &QueryBudget,
        left: &[u64],
        right: &[u64],
    ) -> Result<(Vec<u32>, Vec<u32>), EngineError> {
        /// Probe morsels re-charge each time their pair buffers grow this
        /// many bytes — small enough to catch a runaway morsel, large
        /// enough that well-behaved morsels charge once.
        const CHARGE_SLAB: u64 = 1 << 20;
        let (build, probe, swapped) = if left.len() <= right.len() {
            (left, right, false)
        } else {
            (right, left, true)
        };
        // The chain table stores one position + one chain link per build
        // row.
        budget.charge(16 * build.len() as u64)?;
        let probe_parts = partitions(probe.len());
        if probe_parts <= 1 {
            let (a, b) = ops::hash_join(left, right);
            budget.charge(8 * a.len() as u64)?;
            return Ok((a, b));
        }
        // Partition the build side only when it is big enough to amortize
        // the scatter pass; the partition count is fixed (not
        // thread-dependent), so the task set is identical at every width.
        let parts_log2: u32 = if build.len() >= crate::parallel::MORSEL_ROWS {
            3
        } else {
            0
        };
        let build_parts = 1usize << parts_log2;
        let tables: Vec<ops::JoinHashPartition> = if build_parts == 1 {
            vec![ops::JoinHashPartition::from_positions(
                build,
                0..build.len() as u32,
            )]
        } else {
            // Phase A — one morselized scatter pass over the build column:
            // each morsel buckets its positions per partition (ascending
            // within the morsel).
            let scatter_parts = partitions(build.len());
            self.note_batch(scatter_parts);
            let buckets: Vec<Vec<Vec<u32>>> = self.pool.run_with(
                scatter_parts,
                || (),
                |_, m| {
                    let mut local: Vec<Vec<u32>> = vec![Vec::new(); build_parts];
                    for i in morsel_range(build.len(), scatter_parts, m) {
                        local[ops::join_partition_of(build[i], parts_log2) as usize].push(i as u32);
                    }
                    local
                },
            );
            // Phase B — per-partition chain builds, consuming the morsel
            // buckets in morsel order so positions stay ascending and the
            // chains match the sequential table exactly.
            self.note_batch(build_parts);
            self.pool.run_with(
                build_parts,
                || (),
                |_, w| {
                    ops::JoinHashPartition::from_positions(
                        build,
                        buckets.iter().flat_map(|b| b[w].iter().copied()),
                    )
                },
            )
        };
        self.note_batch(probe_parts);
        let pieces = self.pool.run_with(
            probe_parts,
            || (),
            |_, m| {
                if budget.latched() {
                    return (Vec::new(), Vec::new());
                }
                let r = morsel_range(probe.len(), probe_parts, m);
                // The pair buffers grow per morsel; the partition tables
                // (the expensive scratch) are shared across all morsels.
                let mut bs = Vec::with_capacity(r.len());
                let mut ps = Vec::with_capacity(r.len());
                let mut charged = 0u64;
                for j in r {
                    let key = probe[j];
                    tables[ops::join_partition_of(key, parts_log2) as usize]
                        .probe_into(key, j as u32, &mut bs, &mut ps);
                    // Incremental slab charging: one hot key matching the
                    // whole build side grows the buffers superlinearly —
                    // charge the growth as it happens and bail once the
                    // budget latches (charge() latches on overflow).
                    let grown = 8 * (bs.len() as u64);
                    if grown - charged >= CHARGE_SLAB {
                        if budget.charge(grown - charged).is_err() {
                            return (Vec::new(), Vec::new());
                        }
                        charged = grown;
                    }
                }
                let grown = 8 * (bs.len() as u64);
                if budget.charge(grown - charged).is_err() {
                    return (Vec::new(), Vec::new());
                }
                (bs, ps)
            },
        );
        budget.check()?;
        let total: usize = pieces.iter().map(|(b, _)| b.len()).sum();
        // The concatenated pair vectors are a second copy of every pair.
        budget.charge(8 * total as u64)?;
        let mut build_sel = Vec::with_capacity(total);
        let mut probe_sel = Vec::with_capacity(total);
        for (b, p) in pieces {
            build_sel.extend_from_slice(&b);
            probe_sel.extend_from_slice(&p);
        }
        Ok(if swapped {
            (probe_sel, build_sel)
        } else {
            (build_sel, probe_sel)
        })
    }

    /// Merge equi-join partitioned into left-value-aligned segments; each
    /// segment runs the *sequential* [`ops::merge_join`] kernel over its
    /// slice pair, and segments concatenate in value order — exactly the
    /// sequential pair stream, so the order-preservation claim the props
    /// derivation makes for merge joins holds at every width.
    fn par_merge_join(
        &self,
        budget: &QueryBudget,
        l: &[u64],
        r: &[u64],
    ) -> Result<(Vec<u32>, Vec<u32>), EngineError> {
        let parts = partitions(l.len());
        let seq = |budget: &QueryBudget| -> Result<(Vec<u32>, Vec<u32>), EngineError> {
            let (a, b) = ops::merge_join(l, r);
            budget.charge(8 * a.len() as u64)?;
            Ok((a, b))
        };
        if parts <= 1 || r.is_empty() {
            return seq(budget);
        }
        let bounds = aligned_bounds(l.len(), parts, |a, b| l[a] == l[b]);
        let segs = bounds.len() - 1;
        if segs <= 1 {
            return seq(budget);
        }
        self.note_batch(segs);
        let pieces = self.pool.run_with(
            segs,
            || (),
            |_, k| {
                if budget.latched() {
                    return (Vec::new(), Vec::new());
                }
                let (lo, hi) = (bounds[k], bounds[k + 1]);
                let r_lo = r.partition_point(|&x| x < l[lo]);
                let r_hi = if hi < l.len() {
                    r.partition_point(|&x| x < l[hi])
                } else {
                    r.len()
                };
                let (mut ls, mut rs) = ops::merge_join(&l[lo..hi], &r[r_lo..r_hi]);
                // Per-segment output charge; on overflow the budget
                // latches and the remaining segments short-circuit.
                if budget.charge(8 * ls.len() as u64).is_err() {
                    return (Vec::new(), Vec::new());
                }
                for v in &mut ls {
                    *v += lo as u32;
                }
                for v in &mut rs {
                    *v += r_lo as u32;
                }
                (ls, rs)
            },
        );
        budget.check()?;
        let total: usize = pieces.iter().map(|(a, _)| a.len()).sum();
        budget.charge(8 * total as u64)?;
        let mut lsel = Vec::with_capacity(total);
        let mut rsel = Vec::with_capacity(total);
        for (a, b) in pieces {
            lsel.extend_from_slice(&a);
            rsel.extend_from_slice(&b);
        }
        Ok((lsel, rsel))
    }

    /// Merge equi-join with at least one run-encoded side. Partitioning
    /// must not split a value run across segments: a run-encoded left
    /// side partitions **directly on its run boundaries** (morsels over
    /// run indices — every boundary is a run boundary by construction,
    /// no search needed), a flat left side falls back to the
    /// binary-search value alignment of [`aligned_bounds`]. Each segment
    /// runs the sequential run×block kernel and segments concatenate in
    /// value order — exactly the sequential pair stream.
    fn par_merge_join_runs(
        &self,
        budget: &QueryBudget,
        l: RunsView<'_>,
        r: RunsView<'_>,
    ) -> Result<(Vec<u32>, Vec<u32>), EngineError> {
        let parts = partitions(l.len());
        let seq = |budget: &QueryBudget| -> Result<(Vec<u32>, Vec<u32>), EngineError> {
            let (a, b) = ops::merge_join_runs(l, r);
            budget.charge(8 * a.len() as u64)?;
            Ok((a, b))
        };
        if parts <= 1 || r.is_empty() {
            return seq(budget);
        }
        let bounds: Vec<usize> = match l {
            RunsView::Runs(runs) => {
                let rc = runs.run_count();
                let segs = parts.min(rc);
                let mut b: Vec<usize> = (0..segs)
                    .map(|k| runs.run_start(morsel_range(rc, segs, k).start))
                    .collect();
                b.push(runs.len());
                b
            }
            RunsView::Flat(f) => aligned_bounds(f.len(), parts, |a, b| f[a] == f[b]),
        };
        let segs = bounds.len() - 1;
        if segs <= 1 {
            return seq(budget);
        }
        self.note_batch(segs);
        let pieces = self.pool.run_with(
            segs,
            || (),
            |_, k| {
                if budget.latched() {
                    return (Vec::new(), Vec::new());
                }
                let (lo, hi) = (bounds[k], bounds[k + 1]);
                let r_lo = r.lower_bound(l.value_at(lo));
                let r_hi = if hi < l.len() {
                    r.lower_bound(l.value_at(hi))
                } else {
                    r.len()
                };
                // Slice both sides run-preservingly for the segment.
                let l_owned;
                let lv = match l {
                    RunsView::Runs(runs) => {
                        l_owned = runs.slice(lo..hi);
                        RunsView::Runs(&l_owned)
                    }
                    RunsView::Flat(f) => RunsView::Flat(&f[lo..hi]),
                };
                let r_owned;
                let rv = match r {
                    RunsView::Runs(runs) => {
                        r_owned = runs.slice(r_lo..r_hi);
                        RunsView::Runs(&r_owned)
                    }
                    RunsView::Flat(f) => RunsView::Flat(&f[r_lo..r_hi]),
                };
                let (mut ls, mut rs) = ops::merge_join_runs(lv, rv);
                if budget.charge(8 * ls.len() as u64).is_err() {
                    return (Vec::new(), Vec::new());
                }
                for v in &mut ls {
                    *v += lo as u32;
                }
                for v in &mut rs {
                    *v += r_lo as u32;
                }
                (ls, rs)
            },
        );
        budget.check()?;
        let total: usize = pieces.iter().map(|(a, _)| a.len()).sum();
        budget.charge(8 * total as u64)?;
        let mut lsel = Vec::with_capacity(total);
        let mut rsel = Vec::with_capacity(total);
        for (a, b) in pieces {
            lsel.extend_from_slice(&a);
            rsel.extend_from_slice(&b);
        }
        Ok((lsel, rsel))
    }

    /// Run-based group-count over a run-encoded sorted key column,
    /// partitioned on run indices (each run is one whole group, so a
    /// run-index split never cuts a group) — O(runs) total work.
    fn par_group_count_sorted_runs(&self, keys: &RunCol) -> (Vec<u64>, Vec<u64>) {
        let rc = keys.run_count();
        let parts = partitions(keys.len()).min(rc);
        if parts <= 1 {
            return ops::group_count_sorted_runs(keys);
        }
        self.note_batch(parts);
        let pieces = self.pool.run_with(
            parts,
            || (),
            |_, k| {
                let r = morsel_range(rc, parts, k);
                let ks = keys.values()[r.clone()].to_vec();
                let mut cs = Vec::with_capacity(r.len());
                let mut prev = keys.run_start(r.start) as u32;
                for &e in &keys.run_ends()[r] {
                    cs.push((e - prev) as u64);
                    prev = e;
                }
                (ks, cs)
            },
        );
        let mut ks = Vec::new();
        let mut cs = Vec::new();
        for (k, c) in pieces {
            ks.extend_from_slice(&k);
            cs.extend_from_slice(&c);
        }
        (ks, cs)
    }

    /// Two-key run-based group-count with a run-encoded leading key,
    /// partitioned on the lead column's run boundaries (a lead-run
    /// boundary is always a `(k0, k1)` group boundary).
    fn par_group_count_sorted_2_runs(
        &self,
        k0: &RunCol,
        k1: &[u64],
    ) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
        let rc = k0.run_count();
        let parts = partitions(k0.len()).min(rc);
        if parts <= 1 {
            return ops::group_count_sorted_2_runs(k0, k1);
        }
        self.note_batch(parts);
        let pieces = self.pool.run_with(
            parts,
            || (),
            |_, k| {
                let r = morsel_range(rc, parts, k);
                let lo = k0.run_start(r.start);
                let hi = if r.end < rc {
                    k0.run_start(r.end)
                } else {
                    k0.len()
                };
                let seg = k0.slice(lo..hi);
                ops::group_count_sorted_2_runs(&seg, &k1[lo..hi])
            },
        );
        let mut o0 = Vec::new();
        let mut o1 = Vec::new();
        let mut oc = Vec::new();
        for (a, b, c) in pieces {
            o0.extend_from_slice(&a);
            o1.extend_from_slice(&b);
            oc.extend_from_slice(&c);
        }
        (o0, o1, oc)
    }

    /// One-key hash group-count via per-worker partial maps (the map is
    /// the worker's scratch, reused across every morsel it pulls) merged
    /// and key-sorted at the barrier. Each morsel charges its map growth
    /// to the budget; a latched budget short-circuits remaining morsels.
    fn par_group_count_1(
        &self,
        budget: &QueryBudget,
        keys: &[u64],
    ) -> Result<(Vec<u64>, Vec<u64>), EngineError> {
        let parts = partitions(keys.len());
        if parts <= 1 {
            let out = ops::group_count_1(keys);
            budget.charge(16 * out.0.len() as u64)?;
            return Ok(out);
        }
        self.note_batch(parts);
        let partials = self
            .pool
            .run_reduce(parts, FxHashMap::<u64, u64>::default, |map, m| {
                if budget.latched() {
                    return;
                }
                let before = map.len();
                for &k in &keys[morsel_range(keys.len(), parts, m)] {
                    *map.entry(k).or_insert(0) += 1;
                }
                let _ = budget.charge(32 * (map.len() - before) as u64);
            });
        budget.check()?;
        let acc = merge_partials(partials, |a, b| *a += b);
        let mut pairs: Vec<(u64, u64)> = acc.into_iter().collect();
        pairs.sort_unstable();
        Ok(pairs.into_iter().unzip())
    }

    /// Two-key hash group-count, same shape as [`Self::par_group_count_1`].
    fn par_group_count_2(
        &self,
        budget: &QueryBudget,
        k0: &[u64],
        k1: &[u64],
    ) -> Result<GroupCount2, EngineError> {
        debug_assert_eq!(k0.len(), k1.len());
        let parts = partitions(k0.len());
        if parts <= 1 {
            let out = ops::group_count_2(k0, k1);
            budget.charge(24 * out.0.len() as u64)?;
            return Ok(out);
        }
        self.note_batch(parts);
        let partials =
            self.pool
                .run_reduce(parts, FxHashMap::<(u64, u64), u64>::default, |map, m| {
                    if budget.latched() {
                        return;
                    }
                    let before = map.len();
                    for i in morsel_range(k0.len(), parts, m) {
                        *map.entry((k0[i], k1[i])).or_insert(0) += 1;
                    }
                    let _ = budget.charge(48 * (map.len() - before) as u64);
                });
        budget.check()?;
        let acc = merge_partials(partials, |a, b| *a += b);
        let mut trips: Vec<((u64, u64), u64)> = acc.into_iter().collect();
        trips.sort_unstable();
        let mut o0 = Vec::with_capacity(trips.len());
        let mut o1 = Vec::with_capacity(trips.len());
        let mut oc = Vec::with_capacity(trips.len());
        for ((a, b), c) in trips {
            o0.push(a);
            o1.push(b);
            oc.push(c);
        }
        Ok((o0, o1, oc))
    }

    /// Run-based group-count over a sorted key column, partitioned at
    /// value-run boundaries so no group straddles a segment; each segment
    /// runs the sequential kernel and segments concatenate in key order.
    fn par_group_count_sorted_1(&self, keys: &[u64]) -> (Vec<u64>, Vec<u64>) {
        let parts = partitions(keys.len());
        if parts <= 1 {
            return ops::group_count_sorted_1(keys);
        }
        let bounds = aligned_bounds(keys.len(), parts, |a, b| keys[a] == keys[b]);
        let segs = bounds.len() - 1;
        if segs <= 1 {
            return ops::group_count_sorted_1(keys);
        }
        self.note_batch(segs);
        let pieces = self.pool.run_with(
            segs,
            || (),
            |_, k| ops::group_count_sorted_1(&keys[bounds[k]..bounds[k + 1]]),
        );
        let mut ks = Vec::new();
        let mut cs = Vec::new();
        for (k, c) in pieces {
            ks.extend_from_slice(&k);
            cs.extend_from_slice(&c);
        }
        (ks, cs)
    }

    /// Two-key run-based group-count, segments aligned on `(k0, k1)` run
    /// boundaries.
    fn par_group_count_sorted_2(&self, k0: &[u64], k1: &[u64]) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
        debug_assert_eq!(k0.len(), k1.len());
        let parts = partitions(k0.len());
        if parts <= 1 {
            return ops::group_count_sorted_2(k0, k1);
        }
        let bounds = aligned_bounds(k0.len(), parts, |a, b| (k0[a], k1[a]) == (k0[b], k1[b]));
        let segs = bounds.len() - 1;
        if segs <= 1 {
            return ops::group_count_sorted_2(k0, k1);
        }
        self.note_batch(segs);
        let pieces = self.pool.run_with(
            segs,
            || (),
            |_, k| {
                let r = bounds[k]..bounds[k + 1];
                ops::group_count_sorted_2(&k0[r.clone()], &k1[r])
            },
        );
        let mut o0 = Vec::new();
        let mut o1 = Vec::new();
        let mut oc = Vec::new();
        for (a, b, c) in pieces {
            o0.extend_from_slice(&a);
            o1.extend_from_slice(&b);
            oc.extend_from_slice(&c);
        }
        (o0, o1, oc)
    }

    /// Linear distinct over fully sorted input, partitioned at row-run
    /// boundaries (equal rows never straddle a segment).
    fn par_distinct_sorted(&self, cols: &[&[u64]], len: usize) -> Vec<u32> {
        let parts = partitions(len);
        if parts <= 1 {
            return ops::distinct_sorted(cols, len);
        }
        let bounds = aligned_bounds(len, parts, |a, b| cols.iter().all(|c| c[a] == c[b]));
        let segs = bounds.len() - 1;
        if segs <= 1 {
            return ops::distinct_sorted(cols, len);
        }
        self.note_batch(segs);
        concat_u32(self.pool.run_with(
            segs,
            || (),
            |_, k| {
                let (lo, hi) = (bounds[k], bounds[k + 1]);
                let sliced: Vec<&[u64]> = cols.iter().map(|c| &c[lo..hi]).collect();
                let mut sel = ops::distinct_sorted(&sliced, hi - lo);
                for s in &mut sel {
                    *s += lo as u32;
                }
                sel
            },
        ))
    }

    /// Row-level distinct over unsorted input: per-worker partial maps
    /// (row → smallest position; the map and its key buffer are worker
    /// scratch reused across morsels) merged with min-position at the
    /// barrier. Returns ascending first-occurrence positions — a
    /// canonical representative set, identical at every pool width.
    fn par_distinct_rows(
        &self,
        budget: &QueryBudget,
        cols: &[&[u64]],
        len: usize,
    ) -> Result<Vec<u32>, EngineError> {
        // Per-entry footprint of the dedup maps: the boxed key row plus
        // map overhead.
        let entry_bytes = 24 + 8 * cols.len() as u64;
        let parts = partitions(len);
        if parts <= 1 {
            let mut sel = ops::distinct_rows(cols, len);
            budget.charge(entry_bytes * sel.len() as u64)?;
            sel.sort_unstable();
            return Ok(sel);
        }
        self.note_batch(parts);
        let partials = self.pool.run_reduce(
            parts,
            || (FxHashMap::<Box<[u64]>, u32>::default(), Vec::<u64>::new()),
            |(map, keybuf), m| {
                if budget.latched() {
                    return;
                }
                let before = map.len();
                for i in morsel_range(len, parts, m) {
                    keybuf.clear();
                    keybuf.extend(cols.iter().map(|c| c[i]));
                    match map.get_mut(keybuf.as_slice()) {
                        Some(pos) => *pos = (*pos).min(i as u32),
                        None => {
                            map.insert(keybuf.clone().into_boxed_slice(), i as u32);
                        }
                    }
                }
                let _ = budget.charge(entry_bytes * (map.len() - before) as u64);
            },
        );
        budget.check()?;
        let acc = merge_partials(
            partials.into_iter().map(|(map, _)| map).collect(),
            |p, v| *p = (*p).min(v),
        );
        let mut sel: Vec<u32> = acc.into_values().collect();
        sel.sort_unstable();
        Ok(sel)
    }

    /// Generic hash group-count for ≥3 keys. Up to four keys pack into a
    /// fixed-size array (no per-row allocation) and aggregate in parallel
    /// partial maps; wider key lists fall back to a sequential map keyed
    /// by `Vec` (no benchmark query reaches that).
    fn group_count_generic(
        &self,
        budget: &QueryBudget,
        child: &Chunk,
        keys: &[usize],
    ) -> Result<Chunk, EngineError> {
        let cols: Vec<&[u64]> = keys.iter().map(|&k| child.col(k)).collect();
        let mut rows: Vec<(Vec<u64>, u64)> = if keys.len() <= 4 {
            let n = child.len();
            let parts = partitions(n);
            let fold = |map: &mut FxHashMap<[u64; 4], u64>, r: std::ops::Range<usize>| {
                for i in r {
                    let mut key = [0u64; 4];
                    for (slot, c) in key.iter_mut().zip(&cols) {
                        *slot = c[i];
                    }
                    *map.entry(key).or_insert(0) += 1;
                }
            };
            let mut acc = if parts <= 1 {
                let mut map = FxHashMap::default();
                fold(&mut map, 0..n);
                budget.charge(40 * map.len() as u64)?;
                map
            } else {
                self.note_batch(parts);
                let partials =
                    self.pool
                        .run_reduce(parts, FxHashMap::<[u64; 4], u64>::default, |map, m| {
                            if budget.latched() {
                                return;
                            }
                            let before = map.len();
                            fold(map, morsel_range(n, parts, m));
                            let _ = budget.charge(40 * (map.len() - before) as u64);
                        });
                budget.check()?;
                merge_partials(partials, |a, b| *a += b)
            };
            acc.drain()
                .map(|(k, c)| (k[..keys.len()].to_vec(), c))
                .collect()
        } else {
            let mut map: FxHashMap<Vec<u64>, u64> = FxHashMap::default();
            for r in 0..child.len() {
                let key: Vec<u64> = cols.iter().map(|c| c[r]).collect();
                *map.entry(key).or_insert(0) += 1;
            }
            budget.charge((32 + 8 * keys.len() as u64) * map.len() as u64)?;
            map.into_iter().collect()
        };
        rows.sort_unstable();
        let mut out: Vec<Vec<u64>> = vec![Vec::with_capacity(rows.len()); keys.len() + 1];
        for (key, c) in rows {
            for (i, v) in key.into_iter().enumerate() {
                out[i].push(v);
            }
            out[keys.len()].push(c);
        }
        Ok(Chunk::from_cols(out))
    }
}

/// Merges per-worker partial hash maps into one, combining the values of
/// duplicate keys with `combine`. Worker arrival order is unspecified, so
/// callers must use an order-insensitive combiner (sums, min) — every
/// consumer also key-sorts the merged result before emitting it.
fn merge_partials<K: std::hash::Hash + Eq, V>(
    partials: Vec<FxHashMap<K, V>>,
    combine: impl Fn(&mut V, V),
) -> FxHashMap<K, V> {
    let mut iter = partials.into_iter();
    let mut acc = iter.next().unwrap_or_default();
    for map in iter {
        for (k, v) in map {
            match acc.entry(k) {
                std::collections::hash_map::Entry::Occupied(mut e) => combine(e.get_mut(), v),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(v);
                }
            }
        }
    }
    acc
}

/// Order-preserving concatenation of per-morsel selection vectors.
fn concat_u32(chunks: Vec<Vec<u32>>) -> Vec<u32> {
    let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
    for c in chunks {
        out.extend_from_slice(&c);
    }
    out
}

#[inline]
fn bit(i: usize) -> u64 {
    1u64 << i
}

#[inline]
fn full_mask(arity: usize) -> u64 {
    if arity >= 64 {
        u64::MAX
    } else {
        (1u64 << arity) - 1
    }
}

#[inline]
fn low_bits(mask: u64, n: usize) -> u64 {
    mask & full_mask(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swans_plan::algebra::{group_count, join, project, scan_all, scan_p, scan_po};
    use swans_plan::naive;
    use swans_storage::MachineProfile;

    fn triples() -> Vec<Triple> {
        // type=0 Text=1 lang=2 fre=3 Date=4 eng=5, subjects 10..14
        vec![
            Triple::new(10, 0, 1),
            Triple::new(11, 0, 1),
            Triple::new(12, 0, 4),
            Triple::new(10, 2, 3),
            Triple::new(11, 2, 5),
            Triple::new(13, 2, 3),
        ]
    }

    fn engine(order: SortOrder) -> (StorageManager, ColumnEngine) {
        let m = StorageManager::new(MachineProfile::B);
        let mut e = ColumnEngine::new();
        e.load_triple_store(&m, &triples(), order, false);
        e.load_vertical(&m, &triples(), false);
        (m, e)
    }

    fn check(plan: &Plan, e: &ColumnEngine) {
        let got = naive::normalize(e.execute(plan).expect("plan executes").to_rows());
        let want = naive::normalize(naive::execute(plan, &triples()));
        assert_eq!(got, want, "plan {plan:?}");
    }

    #[test]
    fn scan_matches_naive_all_orders() {
        for order in SortOrder::ALL {
            let (_, e) = engine(order);
            check(&scan_all(), &e);
            check(&scan_po(0, 1), &e);
            check(
                &Plan::ScanTriples {
                    s: Some(10),
                    p: None,
                    o: None,
                },
                &e,
            );
            check(
                &Plan::ScanTriples {
                    s: Some(10),
                    p: Some(2),
                    o: None,
                },
                &e,
            );
            check(
                &Plan::ScanTriples {
                    s: None,
                    p: None,
                    o: Some(1),
                },
                &e,
            );
            check(
                &Plan::ScanTriples {
                    s: Some(10),
                    p: Some(0),
                    o: Some(1),
                },
                &e,
            );
        }
    }

    #[test]
    fn scan_property_matches_naive() {
        let (_, e) = engine(SortOrder::Pso);
        for (s, o, emit) in [
            (None, None, false),
            (None, None, true),
            (Some(10), None, false),
            (None, Some(1), true),
            (Some(10), Some(1), false),
        ] {
            check(
                &Plan::ScanProperty {
                    property: 0,
                    s,
                    o,
                    emit_property: emit,
                },
                &e,
            );
        }
    }

    #[test]
    fn missing_property_scans_empty() {
        let (_, e) = engine(SortOrder::Pso);
        let p = Plan::ScanProperty {
            property: 999,
            s: None,
            o: None,
            emit_property: true,
        };
        assert!(e.execute(&p).expect("empty scan executes").is_empty());
    }

    /// Scans against a layout the engine never loaded return a typed error
    /// instead of aborting the process.
    #[test]
    fn missing_layout_is_an_error_not_a_panic() {
        let m = StorageManager::new(MachineProfile::B);
        let mut triple_only = ColumnEngine::new();
        triple_only.load_triple_store(&m, &triples(), SortOrder::Pso, false);
        let vp_scan = Plan::ScanProperty {
            property: 0,
            s: None,
            o: None,
            emit_property: false,
        };
        assert_eq!(
            triple_only.execute(&vp_scan).unwrap_err(),
            EngineError::MissingVerticalLayout
        );

        let mut vertical_only = ColumnEngine::new();
        vertical_only.load_vertical(&m, &triples(), false);
        assert_eq!(
            vertical_only.execute(&scan_all()).unwrap_err(),
            EngineError::MissingTripleStore
        );
        // The error surfaces even when the bad scan is buried in a tree.
        let nested = group_count(project(join(vp_scan, scan_all(), 0, 0), vec![0]), vec![0]);
        assert_eq!(
            vertical_only.execute(&nested).unwrap_err(),
            EngineError::MissingTripleStore
        );
    }

    /// A structurally malformed plan (out-of-range column reference) is
    /// rejected up front with `InvalidPlan`.
    #[test]
    fn malformed_plan_returns_err() {
        let (_, e) = engine(SortOrder::Pso);
        let bad = project(scan_all(), vec![7]);
        assert!(matches!(e.execute(&bad), Err(EngineError::InvalidPlan(_))));
        let bad_union = Plan::UnionAll {
            inputs: vec![scan_all(), project(scan_all(), vec![0])],
        };
        assert!(matches!(
            e.execute(&bad_union),
            Err(EngineError::InvalidPlan(_))
        ));
    }

    #[test]
    fn join_group_pipeline_matches_naive() {
        let (_, e) = engine(SortOrder::Pso);
        let p = group_count(
            project(join(scan_po(0, 1), scan_all(), 0, 0), vec![4]),
            vec![0],
        );
        check(&p, &e);
    }

    #[test]
    fn distinct_union_matches_naive() {
        let (_, e) = engine(SortOrder::Pso);
        let p = Plan::Distinct {
            input: Box::new(Plan::UnionAll {
                inputs: vec![
                    project(scan_po(0, 1), vec![0]),
                    project(scan_all(), vec![0]),
                ],
            }),
        };
        check(&p, &e);
    }

    #[test]
    fn having_matches_naive() {
        let (_, e) = engine(SortOrder::Pso);
        let p = Plan::HavingCountGt {
            input: Box::new(group_count(project(scan_all(), vec![2]), vec![0])),
            min: 1,
        };
        check(&p, &e);
    }

    /// Projection pushdown: a plan that only consumes p and o must not
    /// read the subject column.
    #[test]
    #[cfg_attr(miri, ignore = "large input: minutes under the interpreter")]
    fn needed_column_analysis_prunes_io() {
        let m = StorageManager::new(MachineProfile::B);
        let mut e = ColumnEngine::new();
        // Large enough that each column occupies multiple pages.
        let big: Vec<Triple> = (0..100_000)
            .map(|i| Triple::new(i, i % 50, i % 1000))
            .collect();
        e.load_triple_store(&m, &big, SortOrder::Pso, false);
        m.clear_pool();
        m.reset_stats();
        // q1 shape: select on p, group on o; s never used.
        let p = group_count(project(scan_p(7), vec![2]), vec![0]);
        let _ = e.execute(&p).expect("plan executes");
        let bytes = m.stats().bytes_read;
        // p + o columns = 2 * 100k * 8B (within page rounding); s pruned.
        let col_bytes = 100_000u64 * 8;
        assert!(
            bytes < 2 * col_bytes + 64 * 1024,
            "read {bytes} bytes, expected ~2 columns"
        );

        // Same plan with explicit s usage reads all three columns.
        m.clear_pool();
        m.reset_stats();
        let p_all = project(scan_p(7), vec![0, 1, 2]);
        let _ = e.execute(&p_all).expect("plan executes");
        assert!(m.stats().bytes_read > bytes);
    }

    /// The write path end-to-end on both layouts: scans union pending
    /// inserts and hide tombstones; a merge folds everything into the
    /// sorted tables without changing any answer.
    #[test]
    fn write_store_union_and_merge_preserve_answers() {
        let (m, mut e) = engine(SortOrder::Pso);
        let mut delta = Delta::new();
        delta
            .delete(Triple::new(11, 0, 1)) // drop one <type> row
            .insert(Triple::new(14, 0, 1)) // new subject, existing property
            .insert(Triple::new(14, 7, 9)); // brand-new property
        e.apply(&m, &delta).expect("delta applies");
        assert_eq!(e.pending_delta(), 3);

        // The logical content both layouts must now serve.
        let mut expect = triples();
        expect.retain(|t| *t != Triple::new(11, 0, 1));
        expect.push(Triple::new(14, 0, 1));
        expect.push(Triple::new(14, 7, 9));

        let check_against = |e: &ColumnEngine, plan: &Plan| {
            let got = naive::normalize(e.execute(plan).expect("plan executes").to_rows());
            let want = naive::normalize(naive::execute(plan, &expect));
            assert_eq!(got, want, "plan {plan:?}");
        };
        let plans = [
            scan_all(),
            scan_p(0),
            scan_po(0, 1),
            Plan::ScanProperty {
                property: 0,
                s: None,
                o: None,
                emit_property: true,
            },
            Plan::ScanProperty {
                property: 7, // only exists in the write store
                s: None,
                o: None,
                emit_property: false,
            },
            Plan::ScanProperty {
                property: 0,
                s: Some(14),
                o: None,
                emit_property: false,
            },
            group_count(
                project(join(scan_po(0, 1), scan_all(), 0, 0), vec![4]),
                vec![0],
            ),
        ];
        for plan in &plans {
            check_against(&e, plan);
        }
        assert!(e.exec_stats().delta_union_scans > 0);
        // Pending inserts downgrade the scans they can reach: property 0
        // and 7 hold pending rows, property 2 is untouched and keeps its
        // order claim.
        let ctx = e.props_ctx();
        assert!(ctx.any_pending_inserts());
        assert_eq!(derive_props(&scan_all(), &ctx), PhysProps::unordered());
        assert_eq!(derive_props(&scan_p(0), &ctx), PhysProps::unordered());
        assert!(derive_props(&scan_p(2), &ctx).sorted_by.is_some());
        let vp_scan2 = Plan::ScanProperty {
            property: 2,
            s: None,
            o: None,
            emit_property: false,
        };
        assert!(derive_props(&vp_scan2, &ctx).sorted_by.is_some());

        // Merge: same answers, sorted dispatch restored, write store empty.
        e.merge(&m).expect("merge succeeds");
        assert_eq!(e.pending_delta(), 0);
        assert!(!e.props_ctx().any_pending_inserts());
        assert_eq!(e.exec_stats().merges, 1);
        for plan in &plans {
            check_against(&e, plan);
        }
        // Property 7 got a real sorted table out of the merge.
        assert_eq!(e.property_table_count(), 3);
        e.reset_exec_stats();
        let j = join(
            Plan::ScanProperty {
                property: 0,
                s: None,
                o: None,
                emit_property: false,
            },
            Plan::ScanProperty {
                property: 2,
                s: None,
                o: None,
                emit_property: false,
            },
            0,
            0,
        );
        let _ = e.execute(&j).expect("join executes");
        let stats = e.exec_stats();
        assert_eq!(stats.merge_joins, 1, "sorted dispatch restored: {stats:?}");
        assert_eq!(stats.delta_union_scans, 0);
    }

    /// Delete semantics: every stored copy goes; a delete cancels matching
    /// pending inserts; a later insert of the same triple does NOT lift
    /// the tombstone — the old read-store copies stay hidden while the
    /// pending insert supplies exactly one new copy.
    #[test]
    fn delete_semantics_across_write_store_and_read_store() {
        let m = StorageManager::new(MachineProfile::B);
        let mut e = ColumnEngine::new();
        // Two identical copies in the read store.
        let mut data = triples();
        data.push(Triple::new(10, 0, 1));
        e.load_triple_store(&m, &data, SortOrder::Pso, false);

        // Delete removes both copies.
        e.apply(&m, &Delta::of_deletes(vec![Triple::new(10, 0, 1)]))
            .expect("applies");
        let got = e.execute(&scan_p(0)).expect("scan").to_rows();
        assert!(
            !got.iter().any(|r| r[0] == 10),
            "all copies hidden: {got:?}"
        );

        // Insert the same triple again: tombstone lifted, one copy visible.
        e.apply(&m, &Delta::of_inserts(vec![Triple::new(10, 0, 1)]))
            .expect("applies");
        let got = e.execute(&scan_p(0)).expect("scan").to_rows();
        assert_eq!(got.iter().filter(|r| r[0] == 10).count(), 1);

        // A delete in the same batch as an earlier queued insert wins.
        let mut both = Delta::new();
        both.delete(Triple::new(10, 0, 1));
        e.apply(&m, &both).expect("applies");
        e.merge(&m).expect("merges");
        let got = e.execute(&scan_p(0)).expect("scan").to_rows();
        assert!(!got.iter().any(|r| r[0] == 10));
        // Deleting something that never existed is a harmless no-op.
        e.apply(&m, &Delta::of_deletes(vec![Triple::new(99, 99, 99)]))
            .expect("applies");
        e.merge(&m).expect("merges");
    }

    /// Reaching the configured threshold merges without an explicit call.
    #[test]
    fn threshold_triggers_automatic_merge() {
        let (m, mut e) = engine(SortOrder::Pso);
        e.set_merge_threshold(3);
        e.apply(
            &m,
            &Delta::of_inserts(vec![Triple::new(20, 0, 1), Triple::new(21, 0, 1)]),
        )
        .expect("applies");
        assert_eq!(e.pending_delta(), 2, "below threshold: no merge yet");
        e.apply(&m, &Delta::of_inserts(vec![Triple::new(22, 0, 1)]))
            .expect("applies");
        assert_eq!(e.pending_delta(), 0, "threshold reached: auto-merged");
        assert_eq!(e.exec_stats().merges, 1);
        let got = e.execute(&scan_po(0, 1)).expect("scan").to_rows();
        assert_eq!(got.len(), 5);
    }

    /// A scan the write store cannot affect (no tombstones, no pending
    /// inserts in its bounds) keeps the plain read-store path.
    #[test]
    fn unaffected_scans_skip_the_union_path() {
        let (m, mut e) = engine(SortOrder::Pso);
        e.apply(&m, &Delta::of_inserts(vec![Triple::new(30, 0, 1)]))
            .expect("applies");
        e.reset_exec_stats();
        // Property 2 has no pending rows; neither scan flavor unions.
        let vp = Plan::ScanProperty {
            property: 2,
            s: None,
            o: None,
            emit_property: false,
        };
        assert_eq!(e.execute(&vp).expect("scans").len(), 3);
        assert_eq!(e.execute(&scan_p(2)).expect("scans").len(), 3);
        assert_eq!(e.exec_stats().delta_union_scans, 0);
        // The property the insert targets does union.
        assert_eq!(e.execute(&scan_p(0)).expect("scans").len(), 4);
        assert_eq!(e.exec_stats().delta_union_scans, 1);
    }

    /// A merge only rewrites tables the delta actually changed: a
    /// tombstone that merely cancelled a pending insert leaves every
    /// stored byte alone, and an insert into one property leaves the
    /// other property tables (and nothing else) untouched.
    #[test]
    fn merge_skips_unchanged_tables() {
        let (m, mut e) = engine(SortOrder::Pso);
        // Insert then delete the same triple: the write store ends up
        // holding only a tombstone that matches no stored row.
        e.apply(&m, &Delta::of_inserts(vec![Triple::new(50, 0, 1)]))
            .expect("applies");
        e.apply(&m, &Delta::of_deletes(vec![Triple::new(50, 0, 1)]))
            .expect("applies");
        assert_eq!(e.pending_delta(), 1, "the tombstone is pending");
        let before = m.stats();
        e.merge(&m).expect("merges");
        let io = m.stats().since(&before);
        assert_eq!(io.bytes_written, 0, "nothing changed, nothing rewritten");

        // An insert touching only property 0 rewrites that table (and the
        // triples table) but not property 2's columns.
        let p2_bytes = {
            let t = &e.props[&2];
            t.s.disk_bytes() + t.o.disk_bytes()
        };
        e.apply(&m, &Delta::of_inserts(vec![Triple::new(51, 0, 1)]))
            .expect("applies");
        let before = m.stats();
        e.merge(&m).expect("merges");
        let io = m.stats().since(&before);
        let triple_bytes: u64 = (0..3)
            .map(|c| e.triple.as_ref().unwrap().cols[c].disk_bytes())
            .sum();
        let p0_bytes = {
            let t = &e.props[&0];
            t.s.disk_bytes() + t.o.disk_bytes()
        };
        assert_eq!(
            io.bytes_written,
            triple_bytes + p0_bytes,
            "only the affected tables are rewritten (p2 holds {p2_bytes}B)"
        );
    }

    /// The storage layer sees the write path: applies charge the log,
    /// merges charge the rebuilt segments.
    #[test]
    fn write_path_is_accounted() {
        let (m, mut e) = engine(SortOrder::Pso);
        m.reset_stats();
        e.apply(&m, &Delta::of_inserts(vec![Triple::new(20, 0, 1)]))
            .expect("applies");
        let after_apply = m.stats();
        assert!(after_apply.bytes_written > 0, "apply charges the log");
        e.merge(&m).expect("merges");
        let after_merge = m.stats().since(&after_apply);
        assert!(
            after_merge.bytes_written > after_apply.bytes_written,
            "a merge rewrites whole tables: {after_merge:?}"
        );
    }

    /// A delta against an engine with no layout is a typed error.
    #[test]
    fn apply_without_layout_is_an_error() {
        let m = StorageManager::new(MachineProfile::B);
        let mut e = ColumnEngine::new();
        assert!(matches!(
            e.apply(&m, &Delta::of_inserts(vec![Triple::new(1, 2, 3)])),
            Err(EngineError::Unsupported(_))
        ));
    }

    /// A data set large enough that every operator partitions (columns
    /// far beyond one morsel).
    fn big_triples() -> Vec<Triple> {
        (0..60_000)
            .map(|i| Triple::new(i % 9_000, i % 7, i % 800))
            .collect()
    }

    /// Morsel-parallel execution is *bit-identical* to sequential: same
    /// rows, same order, at every pool width — scans, selects, hash and
    /// merge joins, group-counts and distinct included.
    #[test]
    fn parallel_execution_is_bit_identical_at_every_width() {
        let data = big_triples();
        let plans = [
            // Residual-filtered scan (p is not the PSO prefix under SPO).
            Plan::ScanTriples {
                s: None,
                p: Some(3),
                o: None,
            },
            // Select fallback (inequality keeps the scan path).
            Plan::Select {
                input: Box::new(scan_all()),
                pred: swans_plan::algebra::Predicate {
                    col: 2,
                    op: CmpOp::Ne,
                    value: 5,
                },
            },
            // Hash join (object-object: neither side object-sorted).
            join(scan_p(1), scan_p(2), 2, 2),
            // Merge join (subject-subject on VP tables).
            join(
                Plan::ScanProperty {
                    property: 1,
                    s: None,
                    o: None,
                    emit_property: false,
                },
                Plan::ScanProperty {
                    property: 2,
                    s: None,
                    o: None,
                    emit_property: false,
                },
                0,
                0,
            ),
            // Hash group-count (keys not a sort prefix).
            group_count(project(scan_all(), vec![2]), vec![0]),
            // Run-based group-count (subject prefix of a VP table).
            group_count(
                Plan::ScanProperty {
                    property: 0,
                    s: None,
                    o: None,
                    emit_property: false,
                },
                vec![0],
            ),
            // Sort-based distinct (projection loses the sort prefix).
            Plan::Distinct {
                input: Box::new(project(scan_all(), vec![2, 0])),
            },
            Plan::FilterIn {
                input: Box::new(scan_all()),
                col: 2,
                values: vec![1, 7, 13, 400],
            },
        ];

        let mut reference: Vec<Vec<Vec<u64>>> = Vec::new();
        for threads in [1usize, 2, 4, 8] {
            let m = StorageManager::new(MachineProfile::B);
            let mut e = ColumnEngine::new();
            e.set_threads(threads);
            assert_eq!(e.threads(), threads);
            e.load_triple_store(&m, &data, SortOrder::Spo, false);
            e.load_vertical(&m, &data, false);
            for (i, plan) in plans.iter().enumerate() {
                let rows = e.execute(plan).expect("plan executes").to_rows();
                if threads == 1 {
                    // Anchor correctness against the naive executor once.
                    assert_eq!(
                        naive::normalize(rows.clone()),
                        naive::normalize(naive::execute(plan, &data)),
                        "plan {i} wrong vs naive"
                    );
                    reference.push(rows);
                } else {
                    assert_eq!(
                        rows, reference[i],
                        "plan {i} differs at {threads} threads (not even row order may change)"
                    );
                }
            }
            let stats = e.exec_stats();
            assert!(
                stats.parallel_tasks > 0,
                "nothing partitioned at {threads} threads: {stats:?}"
            );
        }
    }

    /// Value-aligned segmentation: no run straddles a boundary, giant
    /// runs collapse segments instead of being walked linearly, and the
    /// parallel run-based kernels stay exact on such inputs.
    #[test]
    #[cfg_attr(miri, ignore = "large input: minutes under the interpreter")]
    fn aligned_bounds_handle_giant_runs() {
        // One value covers almost the whole column.
        let mut keys = vec![7u64; 50_000];
        keys.extend([8, 8, 9]);
        let parts = partitions(keys.len());
        let bounds = aligned_bounds(keys.len(), parts, |a, b| keys[a] == keys[b]);
        assert_eq!(bounds.first(), Some(&0));
        assert_eq!(bounds.last(), Some(&keys.len()));
        for w in bounds.windows(2) {
            assert!(w[0] < w[1], "bounds must strictly increase: {bounds:?}");
            // No boundary lands inside a run.
            assert!(w[1] == keys.len() || keys[w[1]] != keys[w[1] - 1]);
        }

        let mut e = ColumnEngine::new();
        e.set_threads(4);
        let (k, c) = e.par_group_count_sorted_1(&keys);
        assert_eq!((k, c), ops::group_count_sorted_1(&keys));
    }

    /// The scratch-reuse accounting: partitioned batches process many
    /// morsels each (`morsels / parallel_tasks` ≫ 1), so per-batch scratch
    /// (hash maps, join partition tables) is reused across morsels rather
    /// than reallocated per morsel.
    #[test]
    fn morsel_counters_show_batched_scratch_reuse() {
        let data = big_triples();
        let m = StorageManager::new(MachineProfile::B);
        let mut e = ColumnEngine::new();
        e.set_threads(4);
        e.load_triple_store(&m, &data, SortOrder::Spo, false);
        let plan = group_count(
            project(
                Plan::ScanTriples {
                    s: None,
                    p: Some(3),
                    o: None,
                },
                vec![2],
            ),
            vec![0],
        );
        let _ = e.execute(&plan).expect("executes");
        let stats = e.exec_stats();
        assert!(stats.parallel_tasks > 0, "{stats:?}");
        assert!(
            stats.morsels >= 4 * stats.parallel_tasks,
            "each partitioned batch should span several morsels \
             (scratch per batch, not per morsel): {stats:?}"
        );
    }

    /// The per-property pending set in action at dispatch level: a pending
    /// insert for one property no longer downgrades merge joins on
    /// untouched properties, while the touched property's scans still
    /// union and hash.
    #[test]
    fn pending_delta_on_one_property_keeps_merge_joins_elsewhere() {
        let data = big_triples();
        let m = StorageManager::new(MachineProfile::B);
        let mut e = ColumnEngine::new();
        e.load_vertical(&m, &data, false);
        e.apply(&m, &Delta::of_inserts(vec![Triple::new(1, 5, 2)]))
            .expect("applies");

        let vp = |p: u64| Plan::ScanProperty {
            property: p,
            s: None,
            o: None,
            emit_property: false,
        };
        // Join over untouched properties: still a merge join, no union.
        e.reset_exec_stats();
        let _ = e.execute(&join(vp(1), vp(2), 0, 0)).expect("executes");
        let clean = e.exec_stats();
        assert_eq!(clean.merge_joins, 1, "{clean:?}");
        assert_eq!(clean.hash_joins, 0, "{clean:?}");
        assert_eq!(clean.delta_union_scans, 0, "{clean:?}");

        // Join touching the pending property: unions and hashes.
        e.reset_exec_stats();
        let dirty_rows = e.execute(&join(vp(5), vp(2), 0, 0)).expect("executes");
        let dirty = e.exec_stats();
        assert_eq!(dirty.merge_joins, 0, "{dirty:?}");
        assert_eq!(dirty.hash_joins, 1, "{dirty:?}");
        assert!(dirty.delta_union_scans >= 1, "{dirty:?}");

        // And the answers are right either way.
        let mut expect = big_triples();
        expect.push(Triple::new(1, 5, 2));
        assert_eq!(
            naive::normalize(dirty_rows.to_rows()),
            naive::normalize(naive::execute(&join(vp(5), vp(2), 0, 0), &expect))
        );
    }

    /// Run-shaped data: each subject holds several objects per property,
    /// so vertically-partitioned subject columns compress, and the PSO
    /// triples lead column compresses massively.
    fn run_shaped_triples() -> Vec<Triple> {
        // ~8.6 statements per (subject, property): long enough runs that
        // every run kernel — the dense-output ones included — dispatches.
        (0..60_000)
            .map(|i| Triple::new(i % 1_000, i % 7, i % 797))
            .collect()
    }

    fn vp_scan(p: u64) -> Plan {
        Plan::ScanProperty {
            property: p,
            s: None,
            o: None,
            emit_property: false,
        }
    }

    /// Plans that exercise every run-native kernel: run-emitting scans,
    /// run-aware selects and IN filters, run×block merge joins, and
    /// aggregation straight off run lengths.
    fn run_heavy_plans() -> Vec<Plan> {
        vec![
            group_count(vp_scan(1), vec![0]),
            group_count(vp_scan(1), vec![0, 1]),
            join(vp_scan(1), vp_scan(2), 0, 0),
            Plan::Select {
                input: Box::new(vp_scan(3)),
                pred: swans_plan::algebra::Predicate {
                    col: 0,
                    op: CmpOp::Ne,
                    value: 5,
                },
            },
            Plan::FilterIn {
                input: Box::new(vp_scan(3)),
                col: 0,
                values: vec![5, 900, 2_999, 1],
            },
            // PSO lead column (p) is run-encoded through the projection.
            group_count(project(scan_all(), vec![1]), vec![0]),
        ]
    }

    /// Compressed execution end-to-end: run-encoded scans and run kernels
    /// fire, charge compressed instead of logical bytes, and the output
    /// is *bit-identical* to the flat-kernel baseline on every plan.
    #[test]
    fn run_execution_matches_flat_baseline_bit_identically() {
        let data = run_shaped_triples();
        let m = StorageManager::new(MachineProfile::B);
        let mut run = ColumnEngine::new();
        run.load_vertical(&m, &data, true);
        run.load_triple_store(&m, &data, SortOrder::Pso, true);
        let mut flat = ColumnEngine::new();
        flat.set_run_kernels(false);
        assert!(!flat.run_kernels());
        flat.load_vertical(&m, &data, true);
        flat.load_triple_store(&m, &data, SortOrder::Pso, true);

        for (i, plan) in run_heavy_plans().iter().enumerate() {
            run.reset_exec_stats();
            let a = run.execute(plan).expect("run path").to_rows();
            let b = flat.execute(plan).expect("flat path").to_rows();
            assert_eq!(a, b, "plan {i} differs between run and flat execution");
            // Anchor correctness once against the naive executor too.
            assert_eq!(
                naive::normalize(a),
                naive::normalize(naive::execute(plan, &data)),
                "plan {i} wrong vs naive"
            );
            let stats = run.exec_stats();
            assert!(stats.run_scans > 0, "plan {i}: no run scan: {stats:?}");
            assert!(
                stats.run_kernel_dispatches > 0,
                "plan {i}: no run kernel: {stats:?}"
            );
            assert!(
                stats.scan_bytes_compressed < stats.scan_bytes_logical,
                "plan {i}: compression must save bytes: {stats:?}"
            );
        }
        // The flat baseline never touched the run layer.
        let fstats = flat.exec_stats();
        assert_eq!(fstats.run_scans, 0);
        assert_eq!(fstats.run_kernel_dispatches, 0);
        assert_eq!(fstats.scan_bytes_compressed, 0);
        assert_eq!(fstats.runs_expanded, 0);
    }

    /// Run-kernel execution is bit-identical across pool widths — the
    /// run-boundary partitioning (run indices, never inside a run) keeps
    /// the morsel-order merges exact.
    #[test]
    fn run_execution_is_bit_identical_at_every_width() {
        let data = run_shaped_triples();
        let mut reference: Vec<Vec<Vec<u64>>> = Vec::new();
        for threads in [1usize, 2, 8] {
            let m = StorageManager::new(MachineProfile::B);
            let mut e = ColumnEngine::new();
            e.set_threads(threads);
            e.load_vertical(&m, &data, true);
            e.load_triple_store(&m, &data, SortOrder::Pso, true);
            for (i, plan) in run_heavy_plans().iter().enumerate() {
                let rows = e.execute(plan).expect("plan executes").to_rows();
                if threads == 1 {
                    reference.push(rows);
                } else {
                    assert_eq!(rows, reference[i], "plan {i} differs at {threads} threads");
                }
            }
            assert!(e.exec_stats().run_kernel_dispatches > 0, "width {threads}");
        }
    }

    /// The result boundary: a raw scan keeps its subject column
    /// run-encoded through the whole plan; `execute_rows` expands it
    /// there and counts the expansion.
    #[test]
    fn execute_rows_expands_at_the_result_boundary() {
        let data = run_shaped_triples();
        let m = StorageManager::new(MachineProfile::B);
        let mut e = ColumnEngine::new();
        e.load_vertical(&m, &data, true);
        let plan = vp_scan(1);
        let chunk = e.execute(&plan).expect("scan runs");
        assert!(chunk.col_is_runs(0), "subject column stays run-encoded");
        e.reset_exec_stats();
        let rows = e.execute_rows(&plan).expect("scan decodes");
        assert!(e.exec_stats().runs_expanded >= 1);
        assert_eq!(
            naive::normalize(rows),
            naive::normalize(naive::execute(&plan, &data))
        );
    }

    /// A pending delta on a property suppresses run emission for its
    /// scans (the union path is flat) without touching other properties;
    /// a merge restores it.
    #[test]
    fn pending_delta_suppresses_run_emission_until_merge() {
        let data = run_shaped_triples();
        let m = StorageManager::new(MachineProfile::B);
        let mut e = ColumnEngine::new();
        e.load_vertical(&m, &data, true);
        e.apply(&m, &Delta::of_inserts(vec![Triple::new(1, 1, 2)]))
            .expect("applies");

        e.reset_exec_stats();
        let _ = e.execute(&vp_scan(1)).expect("dirty scan");
        let dirty = e.exec_stats();
        assert_eq!(dirty.run_scans, 0, "{dirty:?}");
        assert!(dirty.delta_union_scans >= 1);

        e.reset_exec_stats();
        let _ = e.execute(&vp_scan(2)).expect("clean scan");
        assert!(
            e.exec_stats().run_scans >= 1,
            "untouched property emits runs"
        );

        e.merge(&m).expect("merges");
        e.reset_exec_stats();
        let _ = e.execute(&vp_scan(1)).expect("merged scan");
        assert!(e.exec_stats().run_scans >= 1, "merge restores run emission");
    }

    /// The per-table RLE auto-decision across merges: a near-distinct
    /// subject column loads uncompressed, compresses once a merge folds
    /// in duplicate subjects, and decompresses again when they leave —
    /// never staying silently stale.
    #[test]
    #[cfg_attr(miri, ignore = "large input: minutes under the interpreter")]
    fn merge_retakes_rle_decision_per_property_table() {
        let base: Vec<Triple> = (0..5_000).map(|i| Triple::new(i, 9, i)).collect();
        let m = StorageManager::new(MachineProfile::B);
        let mut e = ColumnEngine::new();
        e.load_vertical(&m, &base, true);
        assert!(
            !e.props[&9].s.has_runs(),
            "distinct subjects must not compress"
        );

        // Five extra objects per subject: runs of length 6 — compresses
        // well past the engine's run-emission threshold.
        let dupes: Vec<Triple> = (0..25_000)
            .map(|i| Triple::new(i % 5_000, 9, 100_000 + i))
            .collect();
        e.apply(&m, &Delta::of_inserts(dupes.clone()))
            .expect("applies");
        e.merge(&m).expect("merges");
        assert!(
            e.props[&9].s.has_runs(),
            "merge must re-take the RLE decision"
        );
        e.reset_exec_stats();
        let got = e
            .execute(&group_count(vp_scan(9), vec![0]))
            .expect("group runs");
        assert!(e.exec_stats().run_scans >= 1);
        assert_eq!(got.len(), 5_000);

        // Deleting the duplicates drops the compression again.
        e.apply(&m, &Delta::of_deletes(dupes)).expect("applies");
        e.merge(&m).expect("merges");
        assert!(
            !e.props[&9].s.has_runs(),
            "merge must drop compression that no longer pays"
        );
    }

    /// Runs must never flow where the derivation claims none — the two
    /// sneaky shapes: a *bound* scan that happens to cover the whole
    /// stored range (claim requires no bound at all), and a merge join
    /// whose right selection vector happens to be monotone (claims say
    /// only the left side survives run-encoded).
    #[test]
    #[cfg_attr(miri, ignore = "large input: minutes under the interpreter")]
    fn unclaimed_positions_never_carry_runs() {
        // Every triple of property 7 — a p-bound PSO scan covers the
        // whole table; property 9 is one distinct row per subject.
        let mut data: Vec<Triple> = (0..20_000).map(|i| Triple::new(i / 8, 7, i % 8)).collect();
        data.extend((0..2_500).map(|i| Triple::new(i, 9, 424_242)));
        let m = StorageManager::new(MachineProfile::B);
        let mut e = ColumnEngine::new();
        e.load_triple_store(&m, &data, SortOrder::Pso, true);
        e.load_vertical(&m, &data, true);
        let ctx = e.props_ctx();

        // Bound-but-covering triples scan: claim empty, output flat.
        let bound = scan_p(7);
        assert!(derive_props(&bound, &ctx).run_encoded.is_empty());
        let chunk = e.execute(&bound).expect("scan runs");
        for c in 0..chunk.arity() {
            assert!(!chunk.col_is_runs(c), "unclaimed run column {c}");
        }
        // Bound subject covering one whole run on the VP table.
        let vps = Plan::ScanProperty {
            property: 7,
            s: Some(3),
            o: None,
            emit_property: false,
        };
        assert!(!e.execute(&vps).expect("scan runs").col_is_runs(0));

        // Merge join with a distinct (flat) left side: the right pair
        // positions come out monotone, but the right run column must
        // still gather flat.
        let j = join(vp_scan(9), vp_scan(7), 0, 0);
        assert!(derive_props(&j, &ctx).run_encoded.is_empty());
        e.reset_exec_stats();
        let out = e.execute(&j).expect("join runs");
        assert_eq!(e.exec_stats().merge_joins, 1);
        for c in 0..out.arity() {
            assert!(!out.col_is_runs(c), "unclaimed run column {c}");
        }
        assert_eq!(
            naive::normalize(out.to_rows()),
            naive::normalize(naive::execute(&j, &data))
        );
    }

    /// The sorted `IN` satellite: a derived-sorted filter column resolves
    /// each probe by binary search (counted), identically to the linear
    /// kernel — and the baseline with sorted paths off keeps the linear
    /// scan.
    #[test]
    fn filter_in_on_sorted_column_binary_searches() {
        let data = run_shaped_triples();
        let m = StorageManager::new(MachineProfile::B);
        let mut e = ColumnEngine::new();
        // No compression: the sorted-IN path must fire on flat sorted
        // columns too.
        e.load_vertical(&m, &data, false);
        let plan = Plan::FilterIn {
            input: Box::new(vp_scan(4)),
            col: 0,
            values: vec![7, 2_999, 7, 100, 5_000_000],
        };
        e.reset_exec_stats();
        let got = e.execute(&plan).expect("filter runs");
        let stats = e.exec_stats();
        assert_eq!(stats.sorted_in_selects, 1, "{stats:?}");
        assert_eq!(stats.run_scans, 0, "uncompressed: no run emission");
        assert_eq!(
            naive::normalize(got.to_rows()),
            naive::normalize(naive::execute(&plan, &data))
        );

        let mut baseline = ColumnEngine::new();
        baseline.set_sorted_paths(false);
        baseline.load_vertical(&m, &data, false);
        baseline.reset_exec_stats();
        let base = baseline.execute(&plan).expect("baseline runs");
        assert_eq!(baseline.exec_stats().sorted_in_selects, 0);
        assert_eq!(got.to_rows(), base.to_rows());
    }

    /// All twelve benchmark queries on both layouts match the naive
    /// executor on a structured micro-dataset.
    #[test]
    fn benchmark_queries_match_naive() {
        use swans_plan::queries::{build_plan, vocab, QueryContext, QueryId, Scheme};
        let mut ds = swans_rdf::Dataset::new();
        let subj = |i: usize| format!("<s{i}>");
        for i in 0..60 {
            ds.add(
                &subj(i),
                vocab::TYPE,
                if i % 3 == 0 { vocab::TEXT } else { vocab::DATE },
            );
            if i % 2 == 0 {
                ds.add(&subj(i), vocab::LANGUAGE, vocab::FRENCH);
            }
            if i % 5 == 0 {
                ds.add(&subj(i), vocab::ORIGIN, vocab::DLC);
            }
            if i % 4 == 0 {
                ds.add(&subj(i), vocab::RECORDS, &subj((i + 1) % 60));
            }
            if i % 7 == 0 {
                ds.add(&subj(i), vocab::POINT, vocab::END);
                ds.add(&subj(i), vocab::ENCODING, "\"enc\"");
            }
            ds.add(&subj(i), "<title>", &format!("\"t{}\"", i % 6));
        }
        ds.add(vocab::CONFERENCES, "<title>", "\"t1\"");
        ds.add(vocab::CONFERENCES, vocab::TYPE, vocab::TEXT);

        let ctx = QueryContext::from_dataset(&ds, 4);
        let m = StorageManager::new(MachineProfile::B);
        let mut e = ColumnEngine::new();
        e.load_triple_store(&m, &ds.triples, SortOrder::Pso, false);
        e.load_vertical(&m, &ds.triples, false);
        // The hash baseline: same layouts, sorted dispatch layer off.
        let mut hash = ColumnEngine::new();
        hash.set_sorted_paths(false);
        hash.load_triple_store(&m, &ds.triples, SortOrder::Pso, false);
        hash.load_vertical(&m, &ds.triples, false);

        for q in QueryId::ALL {
            for scheme in [Scheme::TripleStore, Scheme::VerticallyPartitioned] {
                let plan = build_plan(q, scheme, &ctx);
                let got = naive::normalize(e.execute(&plan).expect("plan executes").to_rows());
                let want = naive::normalize(naive::execute(&plan, &ds.triples));
                assert_eq!(got, want, "query {q} / {}", scheme.name());
                // Sorted paths (merge joins, run aggregation, ...) answer
                // exactly like the hash-only baseline.
                let base = naive::normalize(hash.execute(&plan).expect("hash executes").to_rows());
                assert_eq!(got, base, "sorted vs hash on {q} / {}", scheme.name());
            }
        }
        // The sorted layer did real work on this workload...
        let stats = e.exec_stats();
        assert!(
            stats.merge_joins > 0,
            "no merge joins dispatched: {stats:?}"
        );
        // ...and the baseline never touched a sorted kernel.
        let base_stats = hash.exec_stats();
        assert_eq!(base_stats.merge_joins, 0);
        assert_eq!(base_stats.sorted_group_counts, 0);
        assert_eq!(base_stats.sorted_distincts, 0);
    }
}
