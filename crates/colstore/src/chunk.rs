//! Materialized columnar intermediates, including the run-length-encoded
//! column representation that compressed execution flows through the
//! operator tree.

use std::ops::Range;
use std::sync::{Arc, OnceLock};

/// A run-length-encoded column: `values[i]` covers the logical rows
/// `run_ends[i-1]..run_ends[i]` (with `run_ends[-1]` read as 0).
///
/// Invariants (checked in debug builds):
/// * `values.len() == run_ends.len()`,
/// * `run_ends` is strictly increasing and its last entry is the logical
///   length,
/// * adjacent runs hold *different* values (runs are maximal), so on a
///   sorted column each run is exactly one group — the property the
///   run-based aggregation kernels read counts straight off.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunCol {
    values: Vec<u64>,
    run_ends: Vec<u32>,
}

impl RunCol {
    /// Builds a run column from parallel `values`/`run_ends` vectors.
    pub fn new(values: Vec<u64>, run_ends: Vec<u32>) -> Self {
        debug_assert_eq!(values.len(), run_ends.len());
        debug_assert!(run_ends.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(values.windows(2).all(|w| w[0] != w[1]), "runs are maximal");
        debug_assert!(run_ends.first().is_none_or(|&e| e > 0));
        Self { values, run_ends }
    }

    /// Encodes a flat column (adjacent equal values collapse into runs).
    pub fn from_flat(data: &[u64]) -> Self {
        debug_assert!(data.len() <= u32::MAX as usize);
        let mut values = Vec::new();
        let mut run_ends = Vec::new();
        for (i, &v) in data.iter().enumerate() {
            if values.last() == Some(&v) {
                *run_ends.last_mut().expect("runs non-empty") = i as u32 + 1;
            } else {
                values.push(v);
                run_ends.push(i as u32 + 1);
            }
        }
        Self { values, run_ends }
    }

    /// Logical (decompressed) row count.
    pub fn len(&self) -> usize {
        self.run_ends.last().map_or(0, |&e| e as usize)
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.run_ends.is_empty()
    }

    /// Number of runs.
    pub fn run_count(&self) -> usize {
        self.values.len()
    }

    /// One value per run.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Exclusive end row of each run (cumulative run lengths).
    pub fn run_ends(&self) -> &[u32] {
        &self.run_ends
    }

    /// First logical row of run `i`.
    #[inline]
    pub fn run_start(&self, i: usize) -> usize {
        if i == 0 {
            0
        } else {
            self.run_ends[i - 1] as usize
        }
    }

    /// The logical row range of run `i`.
    #[inline]
    pub fn run_range(&self, i: usize) -> Range<usize> {
        self.run_start(i)..self.run_ends[i] as usize
    }

    /// The compressed footprint of this representation in bytes (one
    /// `(value, run_end)` pair per run), versus `8 * len()` flat.
    pub fn compressed_bytes(&self) -> u64 {
        self.run_count() as u64 * 16
    }

    /// Iterates `(value, logical row range)` per run.
    pub fn runs(&self) -> impl Iterator<Item = (u64, Range<usize>)> + '_ {
        (0..self.run_count()).map(|i| (self.values[i], self.run_range(i)))
    }

    /// The value at logical row `pos` (binary search over run ends).
    pub fn value_at(&self, pos: usize) -> u64 {
        debug_assert!(pos < self.len());
        let i = self.run_ends.partition_point(|&e| e as usize <= pos);
        self.values[i]
    }

    /// Decompresses into a flat vector.
    pub fn expand(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len());
        for (v, r) in self.runs() {
            out.resize(out.len() + r.len(), v);
        }
        out
    }

    /// The run-preserving form of a contiguous row slice: runs cut at the
    /// range edges, interior runs shared structure-free.
    pub fn slice(&self, range: Range<usize>) -> RunCol {
        debug_assert!(range.end <= self.len());
        if range.is_empty() {
            return RunCol::default();
        }
        let first = self
            .run_ends
            .partition_point(|&e| (e as usize) <= range.start);
        let mut values = Vec::new();
        let mut run_ends = Vec::new();
        for i in first..self.run_count() {
            let r = self.run_range(i);
            if r.start >= range.end {
                break;
            }
            values.push(self.values[i]);
            run_ends.push((r.end.min(range.end) - range.start) as u32);
        }
        RunCol { values, run_ends }
    }

    /// Run-preserving gather: the rows selected by a **non-decreasing**
    /// position vector, re-collapsed into maximal runs. This is how
    /// selection and merge-join outputs stay run-encoded — their selection
    /// vectors are monotone by construction. The loop consumes the
    /// selection run by run (one comparison per element, the same cost
    /// class as a flat gather's copy, with far fewer writes) and starts
    /// at the binary-searched first run, so gathering a slice of `sel`
    /// costs O(slice + runs overlapped), not O(total runs) — the property
    /// the piece-parallel gather relies on.
    pub fn gather(&self, sel: &[u32]) -> RunCol {
        debug_assert!(sel.windows(2).all(|w| w[0] <= w[1]));
        let mut values: Vec<u64> = Vec::new();
        let mut run_ends: Vec<u32> = Vec::new();
        let Some(&first) = sel.first() else {
            return RunCol::default();
        };
        let mut run = self.run_ends.partition_point(|&e| e <= first);
        let mut i = 0usize;
        while i < sel.len() {
            while self.run_ends[run] <= sel[i] {
                run += 1;
            }
            let end = self.run_ends[run];
            let v = self.values[run];
            while i < sel.len() && sel[i] < end {
                i += 1;
            }
            if values.last() == Some(&v) {
                *run_ends.last_mut().expect("non-empty") = i as u32;
            } else {
                values.push(v);
                run_ends.push(i as u32);
            }
        }
        RunCol { values, run_ends }
    }

    /// Gathers the rows of a **non-decreasing** position vector directly
    /// into a flat output slice — the path for a dense gather whose
    /// output will not stay run-encoded: one comparison and one store per
    /// element (the flat gather's cost class), touching only the run
    /// headers and never materializing the whole column.
    pub fn gather_flat(&self, sel: &[u32], out: &mut [u64]) {
        debug_assert_eq!(sel.len(), out.len());
        debug_assert!(sel.windows(2).all(|w| w[0] <= w[1]));
        let Some(&first) = sel.first() else {
            return;
        };
        let mut run = self.run_ends.partition_point(|&e| e <= first);
        let mut i = 0usize;
        while i < sel.len() {
            while self.run_ends[run] <= sel[i] {
                run += 1;
            }
            let end = self.run_ends[run];
            let v = self.values[run];
            while i < sel.len() && sel[i] < end {
                out[i] = v;
                i += 1;
            }
        }
    }

    /// Concatenates gathered pieces back into one run column, merging the
    /// boundary runs where adjacent pieces meet in the same value — the
    /// barrier step of the piece-parallel run gather.
    pub fn concat(pieces: &[RunCol]) -> RunCol {
        let mut values = Vec::new();
        let mut run_ends: Vec<u32> = Vec::new();
        let mut offset = 0u32;
        for p in pieces {
            for (i, (&v, &e)) in p.values.iter().zip(&p.run_ends).enumerate() {
                if i == 0 && values.last() == Some(&v) {
                    *run_ends.last_mut().expect("non-empty") = offset + e;
                } else {
                    values.push(v);
                    run_ends.push(offset + e);
                }
            }
            offset += p.len() as u32;
        }
        RunCol { values, run_ends }
    }

    /// Positions holding `value`, assuming the run values are sorted
    /// non-decreasing (a run-encoded *sorted* column): a binary search
    /// over the run headers.
    pub fn eq_range_sorted(&self, value: u64) -> Range<usize> {
        debug_assert!(self.values.windows(2).all(|w| w[0] <= w[1]));
        let i = self.values.partition_point(|&v| v < value);
        if i < self.run_count() && self.values[i] == value {
            return self.run_range(i);
        }
        let pos = if i < self.run_count() {
            self.run_start(i)
        } else {
            self.len()
        };
        pos..pos
    }
}

/// A run-encoded intermediate column: the shared run representation plus
/// a lazily-filled flat expansion (shared across clones, built at most
/// once) for consumers that genuinely need flat input.
#[derive(Debug, Clone)]
pub struct RunsData {
    runs: Arc<RunCol>,
    expanded: Arc<OnceLock<Vec<u64>>>,
}

impl RunsData {
    /// The run representation.
    pub fn runs(&self) -> &Arc<RunCol> {
        &self.runs
    }

    /// Whether the flat expansion has been materialized.
    pub fn is_expanded(&self) -> bool {
        self.expanded.get().is_some()
    }

    fn as_slice(&self) -> &[u64] {
        self.expanded.get_or_init(|| self.runs.expand())
    }
}

/// One intermediate column: owned by the operator that produced it, a
/// zero-copy reference to a base column (MonetDB-style BAT sharing — a
/// full-column scan does not copy), or a run-encoded column flowing
/// through compressed execution.
#[derive(Debug, Clone)]
pub enum ColData {
    /// Operator-produced values.
    Owned(Vec<u64>),
    /// A shared base column (unbounded scan output).
    Shared(Arc<Vec<u64>>),
    /// A run-length-encoded column (compressed execution currency).
    /// Reading it through [`ColData::as_slice`] expands lazily; run-aware
    /// consumers read the runs directly and never pay the expansion.
    Runs(RunsData),
}

impl ColData {
    /// Wraps a shared run column.
    pub fn runs(runs: Arc<RunCol>) -> Self {
        ColData::Runs(RunsData {
            runs,
            expanded: Arc::new(OnceLock::new()),
        })
    }

    /// The values. A run-encoded column expands on first flat access (the
    /// expansion is cached and shared across clones).
    #[inline]
    pub fn as_slice(&self) -> &[u64] {
        match self {
            ColData::Owned(v) => v,
            ColData::Shared(a) => a,
            ColData::Runs(r) => r.as_slice(),
        }
    }

    /// The run representation, when this column is run-encoded.
    pub fn as_runs(&self) -> Option<&Arc<RunCol>> {
        match self {
            ColData::Runs(r) => Some(&r.runs),
            _ => None,
        }
    }

    /// Whether this column is run-encoded.
    pub fn is_runs(&self) -> bool {
        matches!(self, ColData::Runs(_))
    }

    /// Converts to an owned flat vector, cloning only if shared.
    pub fn into_owned(self) -> Vec<u64> {
        match self {
            ColData::Owned(v) => v,
            ColData::Shared(a) => Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone()),
            ColData::Runs(r) => match Arc::try_unwrap(r.expanded) {
                Ok(cell) => cell.into_inner().unwrap_or_else(|| r.runs.expand()),
                Err(cell) => cell.get().cloned().unwrap_or_else(|| r.runs.expand()),
            },
        }
    }

    /// Length of the column (no expansion for run-encoded data).
    pub fn len(&self) -> usize {
        match self {
            ColData::Owned(v) => v.len(),
            ColData::Shared(a) => a.len(),
            ColData::Runs(r) => r.runs.len(),
        }
    }

    /// True when the column has no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<Vec<u64>> for ColData {
    fn from(v: Vec<u64>) -> Self {
        ColData::Owned(v)
    }
}

/// A materialized intermediate relation in column-major form.
///
/// Positions the needed-column analysis proved dead are `None`; touching
/// one is an engine bug (the result-equivalence tests would catch the
/// miscomputation that follows).
#[derive(Debug, Clone, Default)]
pub struct Chunk {
    /// Row count.
    len: usize,
    cols: Vec<Option<ColData>>,
}

impl Chunk {
    /// A chunk with `arity` absent columns and `len` rows.
    pub fn absent(arity: usize, len: usize) -> Self {
        Self {
            len,
            cols: vec![None; arity],
        }
    }

    /// Builds a chunk from present owned columns. All must share a length.
    pub fn from_cols(cols: Vec<Vec<u64>>) -> Self {
        let len = cols.first().map_or(0, Vec::len);
        debug_assert!(cols.iter().all(|c| c.len() == len));
        Self {
            len,
            cols: cols.into_iter().map(|c| Some(ColData::Owned(c))).collect(),
        }
    }

    /// Builds a chunk from optional columns (absent = dead position).
    pub fn from_optional(len: usize, cols: Vec<Option<ColData>>) -> Self {
        debug_assert!(cols
            .iter()
            .all(|c| c.as_ref().is_none_or(|c| c.len() == len)));
        Self { len, cols }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the chunk has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns (present or absent).
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// The values of column `i`, expanded flat if run-encoded.
    ///
    /// # Panics
    /// Panics if the column was pruned by the needed-column analysis —
    /// that indicates an engine bug, not a user error.
    #[inline]
    pub fn col(&self, i: usize) -> &[u64] {
        self.cols[i]
            .as_ref()
            .map(ColData::as_slice)
            .unwrap_or_else(|| panic!("column {i} was pruned as dead but is being read"))
    }

    /// The run representation of column `i`, when it is run-encoded.
    pub fn col_runs(&self, i: usize) -> Option<&Arc<RunCol>> {
        self.cols[i].as_ref().and_then(ColData::as_runs)
    }

    /// Whether column `i` is run-encoded.
    pub fn col_is_runs(&self, i: usize) -> bool {
        self.cols[i].as_ref().is_some_and(ColData::is_runs)
    }

    /// Whether column `i` is run-encoded *and* its flat expansion has not
    /// been materialized yet — the condition under which a flat consumer
    /// actually pays (and the engine counts) an expansion.
    pub fn col_expansion_pending(&self, i: usize) -> bool {
        matches!(&self.cols[i], Some(ColData::Runs(r)) if !r.is_expanded())
    }

    /// Whether column `i` is materialized.
    pub fn has_col(&self, i: usize) -> bool {
        self.cols[i].is_some()
    }

    /// Replaces a run-encoded column with its flat expansion in place (a
    /// no-op on flat or pruned columns) — the result-boundary enforcement
    /// of the converse run invariant when an optimizer rewrite produces
    /// runs at a position the submitted plan never claimed.
    pub fn expand_col(&mut self, i: usize) {
        if self.cols[i].as_ref().is_some_and(ColData::is_runs) {
            let c = self.cols[i].take().expect("presence just checked");
            self.cols[i] = Some(ColData::Owned(c.into_owned()));
        }
    }

    /// Takes ownership of column `i` if present.
    pub fn take_col(&mut self, i: usize) -> Option<ColData> {
        self.cols[i].take()
    }

    /// Consumes the chunk into its optional columns.
    pub fn into_cols(self) -> Vec<Option<ColData>> {
        self.cols
    }

    /// Gathers the rows selected by `sel` (positions) into a new chunk,
    /// preserving absent columns. Run-encoded columns stay run-encoded
    /// when `sel` is non-decreasing (selection/merge-join shapes); an
    /// unordered gather (hash-join shape) expands them first.
    pub fn gather(&self, sel: &[u32]) -> Chunk {
        // Checked once, and only when a run column is actually present.
        let monotone = OnceLock::new();
        let is_monotone = || *monotone.get_or_init(|| sel.windows(2).all(|w| w[0] <= w[1]));
        let cols = self
            .cols
            .iter()
            .map(|c| {
                c.as_ref().map(|data| {
                    if let ColData::Runs(r) = data {
                        if is_monotone() {
                            return ColData::runs(Arc::new(r.runs().gather(sel)));
                        }
                    }
                    let src = data.as_slice();
                    ColData::Owned(sel.iter().map(|&i| src[i as usize]).collect())
                })
            })
            .collect();
        Chunk {
            len: sel.len(),
            cols,
        }
    }

    /// Gathers a contiguous row range into a new chunk — the cheap form of
    /// [`Chunk::gather`] for selections resolved by binary search on a
    /// sorted column. The full range is zero-copy for shared columns;
    /// run-encoded columns stay run-encoded (runs cut at the range edges).
    pub fn gather_range(&self, range: Range<usize>) -> Chunk {
        debug_assert!(range.end <= self.len);
        let len = range.len();
        let full = range == (0..self.len);
        let cols = self
            .cols
            .iter()
            .map(|c| {
                c.as_ref().map(|data| {
                    if full {
                        data.clone()
                    } else if let ColData::Runs(r) = data {
                        ColData::runs(Arc::new(r.runs().slice(range.clone())))
                    } else {
                        ColData::Owned(data.as_slice()[range.clone()].to_vec())
                    }
                })
            })
            .collect();
        Chunk { len, cols }
    }

    /// Converts to row-major form (absent columns as 0) — result delivery.
    /// Run-encoded columns are expanded here at the latest: the result
    /// boundary is where compressed execution ends.
    pub fn to_rows(&self) -> Vec<Vec<u64>> {
        (0..self.len)
            .map(|r| {
                self.cols
                    .iter()
                    .map(|c| c.as_ref().map_or(0, |c| c.as_slice()[r]))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_cols_roundtrip() {
        let c = Chunk::from_cols(vec![vec![1, 2, 3], vec![4, 5, 6]]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.arity(), 2);
        assert_eq!(c.col(1), &[4, 5, 6]);
        assert_eq!(c.to_rows(), vec![vec![1, 4], vec![2, 5], vec![3, 6]]);
    }

    #[test]
    fn gather_selects_positions() {
        let c = Chunk::from_cols(vec![vec![10, 20, 30, 40], vec![1, 2, 3, 4]]);
        let g = c.gather(&[3, 1]);
        assert_eq!(g.col(0), &[40, 20]);
        assert_eq!(g.col(1), &[4, 2]);
    }

    #[test]
    fn gather_preserves_absent_columns() {
        let c = Chunk::from_optional(2, vec![Some(ColData::Owned(vec![7, 8])), None]);
        let g = c.gather(&[1]);
        assert!(g.has_col(0));
        assert!(!g.has_col(1));
        assert_eq!(g.col(0), &[8]);
    }

    #[test]
    fn gather_range_slices_rows() {
        let c = Chunk::from_optional(4, vec![Some(ColData::Owned(vec![10, 20, 30, 40])), None]);
        let g = c.gather_range(1..3);
        assert_eq!(g.len(), 2);
        assert_eq!(g.col(0), &[20, 30]);
        assert!(!g.has_col(1));
        assert!(c.gather_range(2..2).is_empty());
    }

    #[test]
    fn gather_range_full_keeps_shared_columns() {
        let base = Arc::new(vec![1u64, 2, 3]);
        let c = Chunk::from_optional(3, vec![Some(ColData::Shared(base.clone()))]);
        let g = c.gather_range(0..3);
        assert_eq!(g.col(0), &[1, 2, 3]);
        // Full-range gather shares rather than copies.
        assert_eq!(Arc::strong_count(&base), 3);
    }

    #[test]
    fn shared_columns_are_zero_copy() {
        let base = Arc::new(vec![1u64, 2, 3]);
        let c = Chunk::from_optional(3, vec![Some(ColData::Shared(base.clone()))]);
        assert_eq!(c.col(0), &[1, 2, 3]);
        // The chunk holds a reference, not a copy.
        assert_eq!(Arc::strong_count(&base), 2);
    }

    #[test]
    fn into_owned_unwraps_or_clones() {
        let base = Arc::new(vec![9u64, 9]);
        let shared = ColData::Shared(base);
        assert_eq!(shared.into_owned(), vec![9, 9]);
        assert_eq!(ColData::Owned(vec![1]).into_owned(), vec![1]);
        let runs = ColData::runs(Arc::new(RunCol::from_flat(&[4, 4, 5])));
        assert_eq!(runs.into_owned(), vec![4, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "pruned as dead")]
    fn reading_absent_column_panics() {
        let c = Chunk::from_optional(1, vec![None]);
        let _ = c.col(0);
    }

    #[test]
    fn empty_chunk() {
        let c = Chunk::absent(3, 0);
        assert!(c.is_empty());
        assert_eq!(c.arity(), 3);
        assert!(c.to_rows().is_empty());
    }

    #[test]
    fn runcol_roundtrips_flat_data() {
        for data in [
            vec![],
            vec![7u64],
            vec![1, 1, 1],
            vec![1, 1, 2, 2, 2, 5, 7, 7],
            vec![3, 1, 1, 2],
        ] {
            let r = RunCol::from_flat(&data);
            assert_eq!(r.expand(), data);
            assert_eq!(r.len(), data.len());
            for (i, &v) in data.iter().enumerate() {
                assert_eq!(r.value_at(i), v, "pos {i}");
            }
        }
        let r = RunCol::from_flat(&[1, 1, 2, 2, 2, 5]);
        assert_eq!(r.run_count(), 3);
        assert_eq!(r.values(), &[1, 2, 5]);
        assert_eq!(r.run_ends(), &[2, 5, 6]);
        assert_eq!(r.compressed_bytes(), 48);
    }

    #[test]
    fn runcol_slice_preserves_runs() {
        let r = RunCol::from_flat(&[1, 1, 2, 2, 2, 5, 7, 7]);
        let s = r.slice(1..6);
        assert_eq!(s.expand(), vec![1, 2, 2, 2, 5]);
        assert_eq!(s.run_count(), 3);
        assert!(r.slice(3..3).is_empty());
        assert_eq!(r.slice(0..8), r);
    }

    #[test]
    fn runcol_gather_collapses_adjacent_runs() {
        let r = RunCol::from_flat(&[1, 1, 2, 2, 2, 5, 7, 7]);
        // Monotone selection with duplicates (the merge-join left shape).
        let sel = [0u32, 0, 1, 4, 5, 6, 7];
        let g = r.gather(&sel);
        let flat = r.expand();
        let want: Vec<u64> = sel.iter().map(|&i| flat[i as usize]).collect();
        assert_eq!(g.expand(), want);
        // Dropping the middle of a run keeps the representation maximal.
        let g2 = r.gather(&[0, 4]);
        assert_eq!(g2.run_count(), 2);
        assert!(r.gather(&[]).is_empty());
    }

    #[test]
    fn runcol_concat_merges_boundary_runs() {
        let r = RunCol::from_flat(&[1, 1, 2, 2, 2, 5, 7, 7]);
        let sel: Vec<u32> = (0..8).collect();
        // Piece-wise gather + concat == whole gather, at every split.
        for split in 0..=8usize {
            let pieces = [r.gather(&sel[..split]), r.gather(&sel[split..])];
            assert_eq!(RunCol::concat(&pieces), r.gather(&sel), "split {split}");
        }
        assert!(RunCol::concat(&[]).is_empty());
    }

    #[test]
    fn runcol_eq_range_matches_partition_points() {
        let data = [1u64, 1, 2, 2, 2, 5, 7, 7];
        let r = RunCol::from_flat(&data);
        for v in 0..9 {
            let lo = data.partition_point(|&x| x < v);
            let hi = data.partition_point(|&x| x <= v);
            assert_eq!(r.eq_range_sorted(v), lo..hi, "value {v}");
        }
        assert_eq!(RunCol::default().eq_range_sorted(3), 0..0);
    }

    #[test]
    fn runs_coldata_expands_lazily_and_shares_the_expansion() {
        let runs = Arc::new(RunCol::from_flat(&[2, 2, 3]));
        let c = ColData::runs(runs);
        let clone = c.clone();
        let ColData::Runs(r) = &c else { unreachable!() };
        assert!(!r.is_expanded(), "no flat access yet");
        assert_eq!(c.len(), 3);
        assert_eq!(clone.as_slice(), &[2, 2, 3]);
        // The clone's expansion is visible through the original: built once.
        assert!(r.is_expanded());
    }

    #[test]
    fn chunk_gather_keeps_runs_for_monotone_selections() {
        let runs = Arc::new(RunCol::from_flat(&[1, 1, 2, 2, 5, 5]));
        let c = Chunk::from_optional(
            6,
            vec![
                Some(ColData::runs(runs)),
                Some(ColData::Owned(vec![9, 8, 7, 6, 5, 4])),
            ],
        );
        let g = c.gather(&[1, 2, 2, 5]);
        assert!(g.col_is_runs(0), "monotone gather preserves runs");
        assert_eq!(g.col(0), &[1, 2, 2, 5]);
        assert_eq!(g.col(1), &[8, 7, 7, 4]);
        // An unordered gather expands.
        let u = c.gather(&[5, 0]);
        assert!(!u.col_is_runs(0));
        assert_eq!(u.col(0), &[5, 1]);
    }

    #[test]
    fn chunk_gather_range_keeps_runs() {
        let runs = Arc::new(RunCol::from_flat(&[1, 1, 2, 2, 5, 5]));
        let c = Chunk::from_optional(6, vec![Some(ColData::runs(runs))]);
        let g = c.gather_range(1..5);
        assert!(g.col_is_runs(0));
        assert_eq!(g.col(0), &[1, 2, 2, 5]);
        let full = c.gather_range(0..6);
        assert!(full.col_is_runs(0));
        assert_eq!(full.to_rows().len(), 6);
    }
}
