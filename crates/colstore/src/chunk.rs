//! Materialized columnar intermediates.

use std::sync::Arc;

/// One intermediate column: either owned by the operator that produced it,
/// or a zero-copy reference to a base column (MonetDB-style BAT sharing —
/// a full-column scan does not copy).
#[derive(Debug, Clone)]
pub enum ColData {
    /// Operator-produced values.
    Owned(Vec<u64>),
    /// A shared base column (unbounded scan output).
    Shared(Arc<Vec<u64>>),
}

impl ColData {
    /// The values.
    #[inline]
    pub fn as_slice(&self) -> &[u64] {
        match self {
            ColData::Owned(v) => v,
            ColData::Shared(a) => a,
        }
    }

    /// Converts to an owned vector, cloning only if shared.
    pub fn into_owned(self) -> Vec<u64> {
        match self {
            ColData::Owned(v) => v,
            ColData::Shared(a) => Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone()),
        }
    }

    /// Length of the column.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when the column has no values.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }
}

impl From<Vec<u64>> for ColData {
    fn from(v: Vec<u64>) -> Self {
        ColData::Owned(v)
    }
}

/// A materialized intermediate relation in column-major form.
///
/// Positions the needed-column analysis proved dead are `None`; touching
/// one is an engine bug (the result-equivalence tests would catch the
/// miscomputation that follows).
#[derive(Debug, Clone, Default)]
pub struct Chunk {
    /// Row count.
    len: usize,
    cols: Vec<Option<ColData>>,
}

impl Chunk {
    /// A chunk with `arity` absent columns and `len` rows.
    pub fn absent(arity: usize, len: usize) -> Self {
        Self {
            len,
            cols: vec![None; arity],
        }
    }

    /// Builds a chunk from present owned columns. All must share a length.
    pub fn from_cols(cols: Vec<Vec<u64>>) -> Self {
        let len = cols.first().map_or(0, Vec::len);
        debug_assert!(cols.iter().all(|c| c.len() == len));
        Self {
            len,
            cols: cols.into_iter().map(|c| Some(ColData::Owned(c))).collect(),
        }
    }

    /// Builds a chunk from optional columns (absent = dead position).
    pub fn from_optional(len: usize, cols: Vec<Option<ColData>>) -> Self {
        debug_assert!(cols
            .iter()
            .all(|c| c.as_ref().is_none_or(|c| c.len() == len)));
        Self { len, cols }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the chunk has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns (present or absent).
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// The values of column `i`.
    ///
    /// # Panics
    /// Panics if the column was pruned by the needed-column analysis —
    /// that indicates an engine bug, not a user error.
    #[inline]
    pub fn col(&self, i: usize) -> &[u64] {
        self.cols[i]
            .as_ref()
            .map(ColData::as_slice)
            .unwrap_or_else(|| panic!("column {i} was pruned as dead but is being read"))
    }

    /// Whether column `i` is materialized.
    pub fn has_col(&self, i: usize) -> bool {
        self.cols[i].is_some()
    }

    /// Takes ownership of column `i` if present.
    pub fn take_col(&mut self, i: usize) -> Option<ColData> {
        self.cols[i].take()
    }

    /// Consumes the chunk into its optional columns.
    pub fn into_cols(self) -> Vec<Option<ColData>> {
        self.cols
    }

    /// Gathers the rows selected by `sel` (positions) into a new chunk,
    /// preserving absent columns.
    pub fn gather(&self, sel: &[u32]) -> Chunk {
        let cols = self
            .cols
            .iter()
            .map(|c| {
                c.as_ref().map(|data| {
                    let src = data.as_slice();
                    ColData::Owned(sel.iter().map(|&i| src[i as usize]).collect())
                })
            })
            .collect();
        Chunk {
            len: sel.len(),
            cols,
        }
    }

    /// Gathers a contiguous row range into a new chunk — the cheap form of
    /// [`Chunk::gather`] for selections resolved by binary search on a
    /// sorted column. The full range is zero-copy for shared columns.
    pub fn gather_range(&self, range: std::ops::Range<usize>) -> Chunk {
        debug_assert!(range.end <= self.len);
        let len = range.len();
        let full = range == (0..self.len);
        let cols = self
            .cols
            .iter()
            .map(|c| {
                c.as_ref().map(|data| {
                    if full {
                        data.clone()
                    } else {
                        ColData::Owned(data.as_slice()[range.clone()].to_vec())
                    }
                })
            })
            .collect();
        Chunk { len, cols }
    }

    /// Converts to row-major form (absent columns as 0) — result delivery.
    pub fn to_rows(&self) -> Vec<Vec<u64>> {
        (0..self.len)
            .map(|r| {
                self.cols
                    .iter()
                    .map(|c| c.as_ref().map_or(0, |c| c.as_slice()[r]))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_cols_roundtrip() {
        let c = Chunk::from_cols(vec![vec![1, 2, 3], vec![4, 5, 6]]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.arity(), 2);
        assert_eq!(c.col(1), &[4, 5, 6]);
        assert_eq!(c.to_rows(), vec![vec![1, 4], vec![2, 5], vec![3, 6]]);
    }

    #[test]
    fn gather_selects_positions() {
        let c = Chunk::from_cols(vec![vec![10, 20, 30, 40], vec![1, 2, 3, 4]]);
        let g = c.gather(&[3, 1]);
        assert_eq!(g.col(0), &[40, 20]);
        assert_eq!(g.col(1), &[4, 2]);
    }

    #[test]
    fn gather_preserves_absent_columns() {
        let c = Chunk::from_optional(2, vec![Some(ColData::Owned(vec![7, 8])), None]);
        let g = c.gather(&[1]);
        assert!(g.has_col(0));
        assert!(!g.has_col(1));
        assert_eq!(g.col(0), &[8]);
    }

    #[test]
    fn gather_range_slices_rows() {
        let c = Chunk::from_optional(4, vec![Some(ColData::Owned(vec![10, 20, 30, 40])), None]);
        let g = c.gather_range(1..3);
        assert_eq!(g.len(), 2);
        assert_eq!(g.col(0), &[20, 30]);
        assert!(!g.has_col(1));
        assert!(c.gather_range(2..2).is_empty());
    }

    #[test]
    fn gather_range_full_keeps_shared_columns() {
        let base = Arc::new(vec![1u64, 2, 3]);
        let c = Chunk::from_optional(3, vec![Some(ColData::Shared(base.clone()))]);
        let g = c.gather_range(0..3);
        assert_eq!(g.col(0), &[1, 2, 3]);
        // Full-range gather shares rather than copies.
        assert_eq!(Arc::strong_count(&base), 3);
    }

    #[test]
    fn shared_columns_are_zero_copy() {
        let base = Arc::new(vec![1u64, 2, 3]);
        let c = Chunk::from_optional(3, vec![Some(ColData::Shared(base.clone()))]);
        assert_eq!(c.col(0), &[1, 2, 3]);
        // The chunk holds a reference, not a copy.
        assert_eq!(Arc::strong_count(&base), 2);
    }

    #[test]
    fn into_owned_unwraps_or_clones() {
        let base = Arc::new(vec![9u64, 9]);
        let shared = ColData::Shared(base.clone());
        assert_eq!(shared.into_owned(), vec![9, 9]);
        assert_eq!(ColData::Owned(vec![1]).into_owned(), vec![1]);
    }

    #[test]
    #[should_panic(expected = "pruned as dead")]
    fn reading_absent_column_panics() {
        let c = Chunk::from_optional(1, vec![None]);
        let _ = c.col(0);
    }

    #[test]
    fn empty_chunk() {
        let c = Chunk::absent(3, 0);
        assert!(c.is_empty());
        assert_eq!(c.arity(), 3);
        assert!(c.to_rows().is_empty());
    }
}
