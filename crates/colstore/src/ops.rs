//! Vectorized operator kernels.
//!
//! Each kernel is a tight loop over column vectors — the column-at-a-time
//! execution style whose processing efficiency the paper credits for
//! column-stores being "particularly suited for RDF data management".

use std::collections::HashMap;
use std::hash::BuildHasherDefault;

use swans_rdf::hash::FxHasher;

type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Positions where `col[i] == value` (or `!=` when `negate`).
pub fn select_cmp(col: &[u64], value: u64, negate: bool) -> Vec<u32> {
    let mut out = Vec::new();
    if negate {
        for (i, &v) in col.iter().enumerate() {
            if v != value {
                out.push(i as u32);
            }
        }
    } else {
        for (i, &v) in col.iter().enumerate() {
            if v == value {
                out.push(i as u32);
            }
        }
    }
    out
}

/// Positions where `col[i]` is in `values`.
pub fn select_in(col: &[u64], values: &[u64]) -> Vec<u32> {
    let set: std::collections::HashSet<u64, BuildHasherDefault<FxHasher>> =
        values.iter().copied().collect();
    let mut out = Vec::new();
    for (i, &v) in col.iter().enumerate() {
        if set.contains(&v) {
            out.push(i as u32);
        }
    }
    out
}

/// A hash table over a build column, with chained duplicates stored
/// compactly (no per-key allocations).
pub struct JoinHash {
    heads: FxMap<u64, u32>,
    /// `next[i]` = next build row with the same key, `u32::MAX` ends.
    next: Vec<u32>,
}

impl JoinHash {
    /// Builds the table over `build`.
    pub fn build(build: &[u64]) -> Self {
        let mut heads: FxMap<u64, u32> =
            FxMap::with_capacity_and_hasher(build.len(), Default::default());
        let mut next = vec![u32::MAX; build.len()];
        for (i, &key) in build.iter().enumerate() {
            let e = heads.entry(key).or_insert(u32::MAX);
            next[i] = *e;
            *e = i as u32;
        }
        Self { heads, next }
    }

    /// Probes with `probe`, emitting matching `(build_pos, probe_pos)`
    /// pairs.
    pub fn probe(&self, probe: &[u64]) -> (Vec<u32>, Vec<u32>) {
        let mut build_sel = Vec::new();
        let mut probe_sel = Vec::new();
        for (j, key) in probe.iter().enumerate() {
            if let Some(&head) = self.heads.get(key) {
                let mut i = head;
                while i != u32::MAX {
                    build_sel.push(i);
                    probe_sel.push(j as u32);
                    i = self.next[i as usize];
                }
            }
        }
        (build_sel, probe_sel)
    }
}

/// Hash equi-join: matching `(left_pos, right_pos)` pairs. Builds on the
/// smaller input.
pub fn hash_join(left: &[u64], right: &[u64]) -> (Vec<u32>, Vec<u32>) {
    if left.len() <= right.len() {
        JoinHash::build(left).probe(right)
    } else {
        let (r, l) = JoinHash::build(right).probe(left);
        (l, r)
    }
}

/// Merge equi-join of two sorted columns: matching `(left_pos, right_pos)`
/// pairs. The "fast (linear) merge joins" the vertically-partitioned
/// proposal advertises for subject-subject joins.
pub fn merge_join(left: &[u64], right: &[u64]) -> (Vec<u32>, Vec<u32>) {
    debug_assert!(left.windows(2).all(|w| w[0] <= w[1]));
    debug_assert!(right.windows(2).all(|w| w[0] <= w[1]));
    let mut l = 0usize;
    let mut r = 0usize;
    let mut left_sel = Vec::new();
    let mut right_sel = Vec::new();
    while l < left.len() && r < right.len() {
        match left[l].cmp(&right[r]) {
            std::cmp::Ordering::Less => l += 1,
            std::cmp::Ordering::Greater => r += 1,
            std::cmp::Ordering::Equal => {
                let v = left[l];
                let l_end = l + left[l..].partition_point(|&x| x == v);
                let r_end = r + right[r..].partition_point(|&x| x == v);
                for li in l..l_end {
                    for ri in r..r_end {
                        left_sel.push(li as u32);
                        right_sel.push(ri as u32);
                    }
                }
                l = l_end;
                r = r_end;
            }
        }
    }
    (left_sel, right_sel)
}

/// Groups by one key column; returns `(keys, counts)`.
pub fn group_count_1(keys: &[u64]) -> (Vec<u64>, Vec<u64>) {
    let mut map: FxMap<u64, u64> = FxMap::default();
    for &k in keys {
        *map.entry(k).or_insert(0) += 1;
    }
    let mut pairs: Vec<(u64, u64)> = map.into_iter().collect();
    pairs.sort_unstable();
    pairs.into_iter().unzip()
}

/// Groups by two key columns; returns `(keys0, keys1, counts)`.
pub fn group_count_2(k0: &[u64], k1: &[u64]) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
    debug_assert_eq!(k0.len(), k1.len());
    let mut map: FxMap<(u64, u64), u64> = FxMap::default();
    for (&a, &b) in k0.iter().zip(k1) {
        *map.entry((a, b)).or_insert(0) += 1;
    }
    let mut trips: Vec<((u64, u64), u64)> = map.into_iter().collect();
    trips.sort_unstable();
    let mut o0 = Vec::with_capacity(trips.len());
    let mut o1 = Vec::with_capacity(trips.len());
    let mut oc = Vec::with_capacity(trips.len());
    for ((a, b), c) in trips {
        o0.push(a);
        o1.push(b);
        oc.push(c);
    }
    (o0, o1, oc)
}

/// Positions of the first occurrence of each distinct row (sort-based).
pub fn distinct_rows(cols: &[&[u64]], len: usize) -> Vec<u32> {
    if len == 0 {
        return Vec::new();
    }
    let mut idx: Vec<u32> = (0..len as u32).collect();
    idx.sort_unstable_by(|&a, &b| {
        for c in cols {
            match c[a as usize].cmp(&c[b as usize]) {
                std::cmp::Ordering::Equal => continue,
                o => return o,
            }
        }
        std::cmp::Ordering::Equal
    });
    let mut out = Vec::new();
    let mut prev: Option<u32> = None;
    for &i in &idx {
        let dup = prev.is_some_and(|p| cols.iter().all(|c| c[p as usize] == c[i as usize]));
        if !dup {
            out.push(i);
        }
        prev = Some(i);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_cmp_eq_and_ne() {
        let col = [5, 1, 5, 2];
        assert_eq!(select_cmp(&col, 5, false), vec![0, 2]);
        assert_eq!(select_cmp(&col, 5, true), vec![1, 3]);
    }

    #[test]
    fn select_in_filters_by_set() {
        let col = [9, 1, 2, 9, 3];
        assert_eq!(select_in(&col, &[1, 3]), vec![1, 4]);
        assert_eq!(select_in(&col, &[]), Vec::<u32>::new());
    }

    #[test]
    fn hash_join_finds_all_pairs() {
        let l = [1, 2, 2, 3];
        let r = [2, 2, 4];
        let (ls, rs) = hash_join(&l, &r);
        let mut pairs: Vec<(u32, u32)> = ls.into_iter().zip(rs).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(1, 0), (1, 1), (2, 0), (2, 1)]);
    }

    #[test]
    fn merge_join_matches_hash_join() {
        let l = [1, 2, 2, 3, 7];
        let r = [0, 2, 2, 3, 3, 9];
        let (mls, mrs) = merge_join(&l, &r);
        let (hls, hrs) = hash_join(&l, &r);
        let mut m: Vec<(u32, u32)> = mls.into_iter().zip(mrs).collect();
        let mut h: Vec<(u32, u32)> = hls.into_iter().zip(hrs).collect();
        m.sort_unstable();
        h.sort_unstable();
        assert_eq!(m, h);
        assert_eq!(m.len(), 2 * 2 + 2);
    }

    #[test]
    fn group_count_1_sorted_output() {
        let (k, c) = group_count_1(&[3, 1, 3, 3, 1]);
        assert_eq!(k, vec![1, 3]);
        assert_eq!(c, vec![2, 3]);
    }

    #[test]
    fn group_count_2_pairs() {
        let (a, b, c) = group_count_2(&[1, 1, 2, 1], &[5, 5, 6, 7]);
        assert_eq!(a, vec![1, 1, 2]);
        assert_eq!(b, vec![5, 7, 6]);
        assert_eq!(c, vec![2, 1, 1]);
    }

    #[test]
    fn distinct_rows_keeps_first_occurrence() {
        let c0 = [1, 1, 2, 1];
        let c1 = [9, 9, 8, 7];
        let mut d = distinct_rows(&[&c0, &c1], 4);
        d.sort_unstable();
        assert_eq!(d, vec![0, 2, 3]);
    }

    #[test]
    fn distinct_rows_empty() {
        assert!(distinct_rows(&[], 0).is_empty());
    }
}

#[cfg(all(test, feature = "proptests"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Merge join ≡ hash join ≡ nested loops for arbitrary sorted data.
        #[test]
        fn join_kernels_agree(
            mut l in proptest::collection::vec(0u64..30, 0..120),
            mut r in proptest::collection::vec(0u64..30, 0..120),
        ) {
            l.sort_unstable();
            r.sort_unstable();
            let mut nested: Vec<(u32, u32)> = Vec::new();
            for (i, a) in l.iter().enumerate() {
                for (j, b) in r.iter().enumerate() {
                    if a == b {
                        nested.push((i as u32, j as u32));
                    }
                }
            }
            nested.sort_unstable();

            let (mls, mrs) = merge_join(&l, &r);
            let mut m: Vec<(u32, u32)> = mls.into_iter().zip(mrs).collect();
            m.sort_unstable();
            prop_assert_eq!(&m, &nested);

            let (hls, hrs) = hash_join(&l, &r);
            let mut h: Vec<(u32, u32)> = hls.into_iter().zip(hrs).collect();
            h.sort_unstable();
            prop_assert_eq!(&h, &nested);
        }

        /// Sort-based distinct matches a hash-set reference.
        #[test]
        fn distinct_matches_reference(
            rows in proptest::collection::vec((0u64..8, 0u64..8), 0..150),
        ) {
            let c0: Vec<u64> = rows.iter().map(|r| r.0).collect();
            let c1: Vec<u64> = rows.iter().map(|r| r.1).collect();
            let sel = distinct_rows(&[&c0, &c1], rows.len());
            let got: std::collections::BTreeSet<(u64, u64)> =
                sel.iter().map(|&i| rows[i as usize]).collect();
            let want: std::collections::BTreeSet<(u64, u64)> =
                rows.iter().copied().collect();
            prop_assert_eq!(&got, &want);
            prop_assert_eq!(sel.len(), want.len());
        }

        /// group_count_1 totals match input length.
        #[test]
        fn group_counts_sum_to_len(keys in proptest::collection::vec(0u64..10, 0..200)) {
            let (k, c) = group_count_1(&keys);
            prop_assert_eq!(c.iter().sum::<u64>() as usize, keys.len());
            prop_assert!(k.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
