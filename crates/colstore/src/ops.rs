//! Vectorized operator kernels.
//!
//! Each kernel is a tight loop over column vectors — the column-at-a-time
//! execution style whose processing efficiency the paper credits for
//! column-stores being "particularly suited for RDF data management".

use std::collections::HashMap;
use std::hash::BuildHasherDefault;

use swans_rdf::hash::FxHasher;

use crate::chunk::RunCol;

type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Positions where `col[i] == value` (or `!=` when `negate`).
pub fn select_cmp(col: &[u64], value: u64, negate: bool) -> Vec<u32> {
    let mut out = Vec::new();
    if negate {
        for (i, &v) in col.iter().enumerate() {
            if v != value {
                out.push(i as u32);
            }
        }
    } else {
        for (i, &v) in col.iter().enumerate() {
            if v == value {
                out.push(i as u32);
            }
        }
    }
    out
}

/// Appends the whole position range of a matching run. A manual push
/// loop into pre-reserved capacity: per-range `Vec::extend` setup costs
/// dominate on short runs, and the output side is the whole cost of a
/// non-selective predicate.
#[inline]
fn push_range(out: &mut Vec<u32>, r: std::ops::Range<usize>) {
    let mut p = r.start as u32;
    let end = r.end as u32;
    while p < end {
        out.push(p);
        p += 1;
    }
}

/// Run-aware [`select_cmp`]: the predicate is evaluated **once per run**
/// and whole position ranges are emitted — identical output, O(runs)
/// predicate tests instead of O(rows).
pub fn select_cmp_runs(runs: &RunCol, value: u64, negate: bool) -> Vec<u32> {
    let mut out = Vec::with_capacity(if negate { runs.len() } else { 0 });
    for (v, r) in runs.runs() {
        if (v == value) != negate {
            push_range(&mut out, r);
        }
    }
    out
}

/// Below this many `IN`-list values a linear membership scan beats
/// building a hash set (the common `FILTER IN` case has a handful).
const SELECT_IN_LINEAR_MAX: usize = 8;

/// Positions where `col[i]` is in `values`.
pub fn select_in(col: &[u64], values: &[u64]) -> Vec<u32> {
    let mut out = Vec::new();
    if values.len() <= SELECT_IN_LINEAR_MAX {
        for (i, &v) in col.iter().enumerate() {
            if values.contains(&v) {
                out.push(i as u32);
            }
        }
    } else {
        let set: std::collections::HashSet<u64, BuildHasherDefault<FxHasher>> =
            values.iter().copied().collect();
        for (i, &v) in col.iter().enumerate() {
            if set.contains(&v) {
                out.push(i as u32);
            }
        }
    }
    out
}

/// Run-aware [`select_in`]: membership is tested once per run.
pub fn select_in_runs(runs: &RunCol, values: &[u64]) -> Vec<u32> {
    let mut out = Vec::new();
    if values.len() <= SELECT_IN_LINEAR_MAX {
        for (v, r) in runs.runs() {
            if values.contains(&v) {
                push_range(&mut out, r);
            }
        }
    } else {
        let set: std::collections::HashSet<u64, BuildHasherDefault<FxHasher>> =
            values.iter().copied().collect();
        for (v, r) in runs.runs() {
            if set.contains(&v) {
                push_range(&mut out, r);
            }
        }
    }
    out
}

/// [`select_in`] over a **sorted** column: each probe value resolves by
/// binary search (k·log n instead of the linear membership scan). The
/// probe list is sorted and deduplicated first, so the per-value ranges
/// concatenate into exactly the ascending position vector [`select_in`]
/// emits.
pub fn select_in_sorted(col: &[u64], values: &[u64]) -> Vec<u32> {
    debug_assert!(col.windows(2).all(|w| w[0] <= w[1]));
    let mut probes: Vec<u64> = values.to_vec();
    probes.sort_unstable();
    probes.dedup();
    let mut out = Vec::new();
    for v in probes {
        let lo = col.partition_point(|&x| x < v);
        let hi = col.partition_point(|&x| x <= v);
        out.extend(lo as u32..hi as u32);
    }
    out
}

/// [`select_in_sorted`] over a run-encoded sorted column: each probe
/// value binary-searches the (much shorter) run headers — k·log(runs).
pub fn select_in_sorted_runs(runs: &RunCol, values: &[u64]) -> Vec<u32> {
    let mut probes: Vec<u64> = values.to_vec();
    probes.sort_unstable();
    probes.dedup();
    let mut out = Vec::new();
    for v in probes {
        let r = runs.eq_range_sorted(v);
        out.extend(r.start as u32..r.end as u32);
    }
    out
}

/// A hash table over a build column, with chained duplicates stored
/// compactly (no per-key allocations).
pub struct JoinHash {
    heads: FxMap<u64, u32>,
    /// `next[i]` = next build row with the same key, `u32::MAX` ends.
    next: Vec<u32>,
}

impl JoinHash {
    /// Builds the table over `build`.
    pub fn build(build: &[u64]) -> Self {
        let mut heads: FxMap<u64, u32> =
            FxMap::with_capacity_and_hasher(build.len(), Default::default());
        let mut next = vec![u32::MAX; build.len()];
        for (i, &key) in build.iter().enumerate() {
            let e = heads.entry(key).or_insert(u32::MAX);
            next[i] = *e;
            *e = i as u32;
        }
        Self { heads, next }
    }

    /// Probes with `probe`, emitting matching `(build_pos, probe_pos)`
    /// pairs.
    pub fn probe(&self, probe: &[u64]) -> (Vec<u32>, Vec<u32>) {
        // At least one output pair per matching probe row; reserving the
        // probe length up front skips the early doubling re-allocations.
        let mut build_sel = Vec::with_capacity(probe.len());
        let mut probe_sel = Vec::with_capacity(probe.len());
        for (j, key) in probe.iter().enumerate() {
            if let Some(&head) = self.heads.get(key) {
                let mut i = head;
                while i != u32::MAX {
                    build_sel.push(i);
                    probe_sel.push(j as u32);
                    i = self.next[i as usize];
                }
            }
        }
        (build_sel, probe_sel)
    }
}

/// The hash partition a key belongs to when the build side is split into
/// `1 << parts_log2` partitions. A multiplicative mix of the key's bits,
/// deliberately *not* the bucket function of [`JoinHash`]'s map, so a
/// pathological key set cannot degrade both at once.
#[inline]
pub fn join_partition_of(key: u64, parts_log2: u32) -> u32 {
    if parts_log2 == 0 {
        return 0;
    }
    ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) & ((1 << parts_log2) - 1)) as u32
}

/// One partition of a hash-partitioned join build side.
///
/// Each worker builds the partition for its own key range by scanning the
/// build column and chaining only the keys that hash into its partition —
/// positions are inserted in ascending order, so the per-key chains are
/// *identical* to the ones an unpartitioned [`JoinHash`] would hold, and
/// a probe therefore emits exactly the sequential pair order. The tables
/// are built once per join and shared (read-only) across every probe
/// morsel — probe scratch, not the build side, is what morsels reuse.
pub struct JoinHashPartition {
    /// Key → most-recently-inserted *local* entry id.
    heads: FxMap<u64, u32>,
    /// `next[e]` = previous local entry with the same key (`u32::MAX`
    /// ends the chain).
    next: Vec<u32>,
    /// Local entry id → global build position.
    pos: Vec<u32>,
}

impl JoinHashPartition {
    /// Builds partition `part` (of `1 << parts_log2`) over `build` by
    /// scanning the whole column. Prefer
    /// [`JoinHashPartition::from_positions`] with a pre-scattered
    /// position list when building several partitions — this form re-scans
    /// `build` once per partition.
    pub fn build(build: &[u64], part: u32, parts_log2: u32) -> Self {
        Self::from_positions(
            build,
            build
                .iter()
                .enumerate()
                .filter(|&(_, &key)| join_partition_of(key, parts_log2) == part)
                .map(|(i, _)| i as u32),
        )
    }

    /// Builds a partition table from this partition's build positions,
    /// supplied in ascending order (one scatter pass produces the lists
    /// for every partition at once). Chains end up identical to the ones
    /// an unpartitioned [`JoinHash`] holds for these keys.
    pub fn from_positions(build: &[u64], positions: impl IntoIterator<Item = u32>) -> Self {
        let mut heads: FxMap<u64, u32> = FxMap::default();
        let mut next = Vec::new();
        let mut pos = Vec::new();
        for i in positions {
            let e = heads.entry(build[i as usize]).or_insert(u32::MAX);
            next.push(*e);
            pos.push(i);
            *e = (next.len() - 1) as u32;
        }
        Self { heads, next, pos }
    }

    /// Appends every `(build_pos, probe_pos)` match for `key` to the
    /// caller's output buffers (build positions in descending order, like
    /// [`JoinHash::probe`]).
    #[inline]
    pub fn probe_into(
        &self,
        key: u64,
        probe_pos: u32,
        build_sel: &mut Vec<u32>,
        probe_sel: &mut Vec<u32>,
    ) {
        if let Some(&head) = self.heads.get(&key) {
            let mut e = head;
            while e != u32::MAX {
                build_sel.push(self.pos[e as usize]);
                probe_sel.push(probe_pos);
                e = self.next[e as usize];
            }
        }
    }

    /// Number of build entries in this partition.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// True when no build key hashed into this partition.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }
}

/// Hash equi-join: matching `(left_pos, right_pos)` pairs. Builds on the
/// smaller input.
pub fn hash_join(left: &[u64], right: &[u64]) -> (Vec<u32>, Vec<u32>) {
    if left.len() <= right.len() {
        JoinHash::build(left).probe(right)
    } else {
        let (r, l) = JoinHash::build(right).probe(left);
        (l, r)
    }
}

/// Merge equi-join of two sorted columns: matching `(left_pos, right_pos)`
/// pairs. The "fast (linear) merge joins" the vertically-partitioned
/// proposal advertises for subject-subject joins.
pub fn merge_join(left: &[u64], right: &[u64]) -> (Vec<u32>, Vec<u32>) {
    debug_assert!(left.windows(2).all(|w| w[0] <= w[1]));
    debug_assert!(right.windows(2).all(|w| w[0] <= w[1]));
    let mut l = 0usize;
    let mut r = 0usize;
    // Every match emits at least one pair per overlapping key; the smaller
    // side is a cheap lower bound that skips early re-allocations.
    let mut left_sel = Vec::with_capacity(left.len().min(right.len()));
    let mut right_sel = Vec::with_capacity(left.len().min(right.len()));
    while l < left.len() && r < right.len() {
        match left[l].cmp(&right[r]) {
            std::cmp::Ordering::Less => l += 1,
            std::cmp::Ordering::Greater => r += 1,
            std::cmp::Ordering::Equal => {
                let v = left[l];
                // Runs of one key are typically short: advance linearly
                // (a binary search over the remainder costs log(n) per
                // run and dominates on near-distinct columns).
                let mut l_end = l + 1;
                while l_end < left.len() && left[l_end] == v {
                    l_end += 1;
                }
                let mut r_end = r + 1;
                while r_end < right.len() && right[r_end] == v {
                    r_end += 1;
                }
                for li in l..l_end {
                    for ri in r..r_end {
                        left_sel.push(li as u32);
                        right_sel.push(ri as u32);
                    }
                }
                l = l_end;
                r = r_end;
            }
        }
    }
    (left_sel, right_sel)
}

/// A sorted join input viewed as a sequence of maximal equal-value runs —
/// either a flat column (runs found by the linear walk [`merge_join`]
/// already does) or a run-encoded column (runs read off the headers in
/// O(1) each). The compressed-execution merge join is generic over the
/// two, so every flat/runs side combination shares one kernel.
#[derive(Debug, Clone, Copy)]
pub enum RunsView<'a> {
    /// A flat sorted column.
    Flat(&'a [u64]),
    /// A run-encoded sorted column.
    Runs(&'a RunCol),
}

impl RunsView<'_> {
    /// Logical row count.
    pub fn len(&self) -> usize {
        match self {
            RunsView::Flat(c) => c.len(),
            RunsView::Runs(r) => r.len(),
        }
    }

    /// True when the input has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this view reads run headers rather than rows.
    pub fn is_runs(&self) -> bool {
        matches!(self, RunsView::Runs(_))
    }

    /// The value at logical row `pos`.
    pub fn value_at(&self, pos: usize) -> u64 {
        match self {
            RunsView::Flat(c) => c[pos],
            RunsView::Runs(r) => r.value_at(pos),
        }
    }

    /// First row position with a value `>= v` (binary search — over the
    /// run headers on run-encoded input).
    pub fn lower_bound(&self, v: u64) -> usize {
        match self {
            RunsView::Flat(c) => c.partition_point(|&x| x < v),
            RunsView::Runs(r) => {
                let i = r.values().partition_point(|&x| x < v);
                if i < r.run_count() {
                    r.run_start(i)
                } else {
                    r.len()
                }
            }
        }
    }

    /// First position `>= from` holding a value `>= v` — the galloping
    /// step of [`leapfrog_join`]. Binary search on flat input, a header
    /// search on run-encoded input.
    pub fn seek(&self, v: u64, from: usize) -> usize {
        match self {
            RunsView::Flat(c) => from + c[from..].partition_point(|&x| x < v),
            RunsView::Runs(_) => self.lower_bound(v).max(from),
        }
    }

    /// End (exclusive) of the maximal equal-value run containing `pos` —
    /// read off the headers in O(log runs) on run-encoded input.
    pub fn run_end_at(&self, pos: usize) -> usize {
        match self {
            RunsView::Flat(c) => pos + c[pos..].partition_point(|&x| x <= c[pos]),
            RunsView::Runs(r) => {
                let ri = r.run_ends().partition_point(|&e| (e as usize) <= pos);
                r.run_ends()[ri] as usize
            }
        }
    }
}

/// Multi-way leapfrog intersection join over sorted key columns; returns
/// one selection vector per input.
///
/// The emitted row stream is **bit-identical** to the left-deep fold of
/// [`merge_join`]s `((I0 ⋈ I1) ⋈ I2) ⋈ …` that joins every later input
/// against input 0's key: keys ascend, and each matching key emits the
/// cross-block of its k equal-value runs in row-major order (input 0
/// outermost, the last input fastest). But nothing pairwise is ever
/// materialized — each input gallops ([`RunsView::seek`]) to the current
/// maximum front value, skipping whole key ranges no other input holds.
/// That is the structural win on selective star patterns, where the
/// binary fold would build a huge two-way intermediate only for the third
/// input to discard almost all of it.
pub fn leapfrog_join(keys: &[RunsView<'_>]) -> Vec<Vec<u32>> {
    let k = keys.len();
    debug_assert!(k >= 2, "leapfrog needs at least two inputs");
    #[cfg(debug_assertions)]
    for key in keys {
        debug_assert!((1..key.len()).all(|i| key.value_at(i - 1) <= key.value_at(i)));
    }
    let mut sels: Vec<Vec<u32>> = vec![Vec::new(); k];
    let mut pos = vec![0usize; k];
    if keys.iter().any(RunsView::is_empty) {
        return sels;
    }
    let mut vmax = (0..k).map(|i| keys[i].value_at(0)).max().unwrap();
    loop {
        // Gallop every lagging input to the frontier; an input landing
        // past it raises the frontier and restarts the round.
        let mut aligned = true;
        for i in 0..k {
            if keys[i].value_at(pos[i]) < vmax {
                pos[i] = keys[i].seek(vmax, pos[i]);
                if pos[i] == keys[i].len() {
                    return sels;
                }
            }
            let v = keys[i].value_at(pos[i]);
            if v > vmax {
                vmax = v;
                aligned = false;
            }
        }
        if !aligned {
            continue;
        }
        // Every front sits on `vmax`: emit its cross-block and advance
        // all inputs past their equal-value runs.
        let ends: Vec<usize> = (0..k).map(|i| keys[i].run_end_at(pos[i])).collect();
        emit_block(&mut sels, &pos, &ends);
        for i in 0..k {
            pos[i] = ends[i];
            if pos[i] == keys[i].len() {
                return sels;
            }
        }
        vmax = (0..k).map(|i| keys[i].value_at(pos[i])).max().unwrap();
    }
}

/// Appends the cross-product block `starts[i]..ends[i]` to each selection
/// vector, counting in row-major order (input 0 slowest, last fastest) —
/// the [`merge_join`]-fold emission order.
fn emit_block(sels: &mut [Vec<u32>], starts: &[usize], ends: &[usize]) {
    let k = starts.len();
    let mut idx: Vec<usize> = starts.to_vec();
    loop {
        for (sel, &i) in sels.iter_mut().zip(&idx) {
            sel.push(i as u32);
        }
        let mut d = k;
        loop {
            if d == 0 {
                return;
            }
            d -= 1;
            idx[d] += 1;
            if idx[d] < ends[d] {
                break;
            }
            idx[d] = starts[d];
        }
    }
}

/// Merge equi-join over run views: matching `(left_pos, right_pos)` pairs
/// in **exactly** the [`merge_join`] order, but every run-encoded side
/// advances by whole runs (one tight comparison per run header instead of
/// one per row) and each matching run pair emits its run×match block
/// directly. Dispatches to a monomorphic kernel per side combination —
/// the per-run bookkeeping must stay as cheap as the flat kernel's
/// per-row step, or short runs would eat the walk savings.
pub fn merge_join_runs(left: RunsView<'_>, right: RunsView<'_>) -> (Vec<u32>, Vec<u32>) {
    match (left, right) {
        (RunsView::Runs(l), RunsView::Runs(r)) => merge_join_rr(l, r),
        (RunsView::Runs(l), RunsView::Flat(r)) => merge_join_rf(l, r),
        (RunsView::Flat(l), RunsView::Runs(r)) => merge_join_fr(l, r),
        (RunsView::Flat(l), RunsView::Flat(r)) => merge_join(l, r),
    }
}

/// Both sides run-encoded: the whole walk happens on run headers.
fn merge_join_rr(l: &RunCol, r: &RunCol) -> (Vec<u32>, Vec<u32>) {
    let (lv, le) = (l.values(), l.run_ends());
    let (rv, re) = (r.values(), r.run_ends());
    let cap = l.len().min(r.len());
    let mut left_sel = Vec::with_capacity(cap);
    let mut right_sel = Vec::with_capacity(cap);
    let (mut li, mut ri) = (0usize, 0usize);
    // Running run starts: no per-run lookups beyond the header arrays.
    let (mut ls, mut rs) = (0u32, 0u32);
    while li < lv.len() && ri < rv.len() {
        match lv[li].cmp(&rv[ri]) {
            std::cmp::Ordering::Less => {
                ls = le[li];
                li += 1;
            }
            std::cmp::Ordering::Greater => {
                rs = re[ri];
                ri += 1;
            }
            std::cmp::Ordering::Equal => {
                for a in ls..le[li] {
                    for b in rs..re[ri] {
                        left_sel.push(a);
                        right_sel.push(b);
                    }
                }
                ls = le[li];
                li += 1;
                rs = re[ri];
                ri += 1;
            }
        }
    }
    (left_sel, right_sel)
}

/// Left run-encoded, right flat: the left walk is per run header, the
/// right walk per row (with the same linear run detection [`merge_join`]
/// does on a match).
fn merge_join_rf(l: &RunCol, r: &[u64]) -> (Vec<u32>, Vec<u32>) {
    let (lv, le) = (l.values(), l.run_ends());
    let cap = l.len().min(r.len());
    let mut left_sel = Vec::with_capacity(cap);
    let mut right_sel = Vec::with_capacity(cap);
    let mut li = 0usize;
    let mut ls = 0u32;
    let mut rp = 0usize;
    while li < lv.len() && rp < r.len() {
        match lv[li].cmp(&r[rp]) {
            std::cmp::Ordering::Less => {
                ls = le[li];
                li += 1;
            }
            std::cmp::Ordering::Greater => rp += 1,
            std::cmp::Ordering::Equal => {
                let v = lv[li];
                let mut r_end = rp + 1;
                while r_end < r.len() && r[r_end] == v {
                    r_end += 1;
                }
                for a in ls..le[li] {
                    for b in rp..r_end {
                        left_sel.push(a);
                        right_sel.push(b as u32);
                    }
                }
                ls = le[li];
                li += 1;
                rp = r_end;
            }
        }
    }
    (left_sel, right_sel)
}

/// Left flat, right run-encoded — the mirror of [`merge_join_rf`], with
/// the left row loop kept outermost so the pair order matches
/// [`merge_join`] exactly.
fn merge_join_fr(l: &[u64], r: &RunCol) -> (Vec<u32>, Vec<u32>) {
    let (rv, re) = (r.values(), r.run_ends());
    let cap = l.len().min(r.len());
    let mut left_sel = Vec::with_capacity(cap);
    let mut right_sel = Vec::with_capacity(cap);
    let mut lp = 0usize;
    let mut ri = 0usize;
    let mut rs = 0u32;
    while lp < l.len() && ri < rv.len() {
        match l[lp].cmp(&rv[ri]) {
            std::cmp::Ordering::Less => lp += 1,
            std::cmp::Ordering::Greater => {
                rs = re[ri];
                ri += 1;
            }
            std::cmp::Ordering::Equal => {
                let v = l[lp];
                let mut l_end = lp + 1;
                while l_end < l.len() && l[l_end] == v {
                    l_end += 1;
                }
                for a in lp..l_end {
                    for b in rs..re[ri] {
                        left_sel.push(a as u32);
                        right_sel.push(b);
                    }
                }
                lp = l_end;
                rs = re[ri];
                ri += 1;
            }
        }
    }
    (left_sel, right_sel)
}

/// Run-based group-count over a run-encoded **sorted** key column: each
/// run *is* one group, so the keys are the run values and the counts are
/// the run-length differences — O(runs), no inner scan at all.
pub fn group_count_sorted_runs(keys: &RunCol) -> (Vec<u64>, Vec<u64>) {
    debug_assert!(keys.values().windows(2).all(|w| w[0] < w[1]));
    let ks = keys.values().to_vec();
    let mut cs = Vec::with_capacity(keys.run_count());
    let mut prev = 0u32;
    for &e in keys.run_ends() {
        cs.push((e - prev) as u64);
        prev = e;
    }
    (ks, cs)
}

/// Two-key run-based group-count where the *leading* key is run-encoded
/// and the pair stream is sorted lexicographically: the outer loop walks
/// `k0`'s runs (each a contiguous block of one leading key) and only the
/// second column is scanned for inner runs.
pub fn group_count_sorted_2_runs(k0: &RunCol, k1: &[u64]) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
    debug_assert_eq!(k0.len(), k1.len());
    let mut o0 = Vec::new();
    let mut o1 = Vec::new();
    let mut oc = Vec::new();
    for (v0, r) in k0.runs() {
        let mut i = r.start;
        while i < r.end {
            let v1 = k1[i];
            let mut j = i + 1;
            while j < r.end && k1[j] == v1 {
                j += 1;
            }
            o0.push(v0);
            o1.push(v1);
            oc.push((j - i) as u64);
            i = j;
        }
    }
    (o0, o1, oc)
}

/// Groups by one key column; returns `(keys, counts)`.
pub fn group_count_1(keys: &[u64]) -> (Vec<u64>, Vec<u64>) {
    let mut map: FxMap<u64, u64> = FxMap::default();
    for &k in keys {
        *map.entry(k).or_insert(0) += 1;
    }
    let mut pairs: Vec<(u64, u64)> = map.into_iter().collect();
    pairs.sort_unstable();
    pairs.into_iter().unzip()
}

/// Groups by two key columns; returns `(keys0, keys1, counts)`.
pub fn group_count_2(k0: &[u64], k1: &[u64]) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
    debug_assert_eq!(k0.len(), k1.len());
    let mut map: FxMap<(u64, u64), u64> = FxMap::default();
    for (&a, &b) in k0.iter().zip(k1) {
        *map.entry((a, b)).or_insert(0) += 1;
    }
    let mut trips: Vec<((u64, u64), u64)> = map.into_iter().collect();
    trips.sort_unstable();
    let mut o0 = Vec::with_capacity(trips.len());
    let mut o1 = Vec::with_capacity(trips.len());
    let mut oc = Vec::with_capacity(trips.len());
    for ((a, b), c) in trips {
        o0.push(a);
        o1.push(b);
        oc.push(c);
    }
    (o0, o1, oc)
}

/// Run-based group-count over one *sorted* key column; returns
/// `(keys, counts)`. Equal keys are adjacent, so each group is one run —
/// no hash table, no output sort.
pub fn group_count_sorted_1(keys: &[u64]) -> (Vec<u64>, Vec<u64>) {
    debug_assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    let mut ks = Vec::new();
    let mut cs = Vec::new();
    let mut i = 0usize;
    while i < keys.len() {
        let v = keys[i];
        let mut j = i + 1;
        while j < keys.len() && keys[j] == v {
            j += 1;
        }
        ks.push(v);
        cs.push((j - i) as u64);
        i = j;
    }
    (ks, cs)
}

/// Run-based group-count over two key columns sorted lexicographically by
/// `(k0, k1)`; returns `(keys0, keys1, counts)`.
pub fn group_count_sorted_2(k0: &[u64], k1: &[u64]) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
    debug_assert_eq!(k0.len(), k1.len());
    debug_assert!((1..k0.len()).all(|i| (k0[i - 1], k1[i - 1]) <= (k0[i], k1[i])));
    let mut o0 = Vec::new();
    let mut o1 = Vec::new();
    let mut oc = Vec::new();
    let mut i = 0usize;
    while i < k0.len() {
        let (a, b) = (k0[i], k1[i]);
        let mut j = i + 1;
        while j < k0.len() && k0[j] == a && k1[j] == b {
            j += 1;
        }
        o0.push(a);
        o1.push(b);
        oc.push((j - i) as u64);
        i = j;
    }
    (o0, o1, oc)
}

/// Positions of the first row of each run in input already sorted so that
/// equal rows are adjacent — the linear form of [`distinct_rows`].
pub fn distinct_sorted(cols: &[&[u64]], len: usize) -> Vec<u32> {
    let mut out = Vec::new();
    for i in 0..len {
        if i == 0 || cols.iter().any(|c| c[i] != c[i - 1]) {
            out.push(i as u32);
        }
    }
    out
}

/// Positions of the first occurrence of each distinct row (sort-based).
/// Ties break on position, so the representative of each duplicate set
/// really is its first occurrence — the same canonical choice the
/// morsel-parallel distinct makes, keeping the two paths bit-identical.
pub fn distinct_rows(cols: &[&[u64]], len: usize) -> Vec<u32> {
    if len == 0 {
        return Vec::new();
    }
    let mut idx: Vec<u32> = (0..len as u32).collect();
    idx.sort_unstable_by(|&a, &b| {
        for c in cols {
            match c[a as usize].cmp(&c[b as usize]) {
                std::cmp::Ordering::Equal => continue,
                o => return o,
            }
        }
        a.cmp(&b)
    });
    let mut out = Vec::new();
    let mut prev: Option<u32> = None;
    for &i in &idx {
        let dup = prev.is_some_and(|p| cols.iter().all(|c| c[p as usize] == c[i as usize]));
        if !dup {
            out.push(i);
        }
        prev = Some(i);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_cmp_eq_and_ne() {
        let col = [5, 1, 5, 2];
        assert_eq!(select_cmp(&col, 5, false), vec![0, 2]);
        assert_eq!(select_cmp(&col, 5, true), vec![1, 3]);
    }

    #[test]
    fn select_in_filters_by_set() {
        let col = [9, 1, 2, 9, 3];
        assert_eq!(select_in(&col, &[1, 3]), vec![1, 4]);
        assert_eq!(select_in(&col, &[]), Vec::<u32>::new());
    }

    /// The linear small-list path and the hash-set path agree at and
    /// around the crossover size.
    #[test]
    fn select_in_linear_and_hashed_paths_agree() {
        let col: Vec<u64> = (0..200).map(|i| i % 23).collect();
        for n in [1, 7, 8, 9, 16] {
            let values: Vec<u64> = (0..n as u64).map(|v| v * 3).collect();
            let want: Vec<u32> = col
                .iter()
                .enumerate()
                .filter(|&(_, v)| values.contains(v))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(select_in(&col, &values), want, "{n} values");
        }
    }

    #[test]
    fn hash_join_finds_all_pairs() {
        let l = [1, 2, 2, 3];
        let r = [2, 2, 4];
        let (ls, rs) = hash_join(&l, &r);
        let mut pairs: Vec<(u32, u32)> = ls.into_iter().zip(rs).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(1, 0), (1, 1), (2, 0), (2, 1)]);
    }

    #[test]
    fn merge_join_matches_hash_join() {
        let l = [1, 2, 2, 3, 7];
        let r = [0, 2, 2, 3, 3, 9];
        let (mls, mrs) = merge_join(&l, &r);
        let (hls, hrs) = hash_join(&l, &r);
        let mut m: Vec<(u32, u32)> = mls.into_iter().zip(mrs).collect();
        let mut h: Vec<(u32, u32)> = hls.into_iter().zip(hrs).collect();
        m.sort_unstable();
        h.sort_unstable();
        assert_eq!(m, h);
        assert_eq!(m.len(), 2 * 2 + 2);
    }

    /// A hash-partitioned build probed partition-by-key emits *exactly*
    /// the sequential [`JoinHash`] pair stream — same pairs, same order —
    /// so morsel-parallel joins are bit-identical to sequential ones.
    #[test]
    fn partitioned_join_matches_joinhash_exactly() {
        let build: Vec<u64> = (0..500).map(|i| i % 37).collect();
        let probe: Vec<u64> = (0..300).map(|i| (i * 7) % 41).collect();
        let seq = JoinHash::build(&build);
        let (want_b, want_p) = seq.probe(&probe);
        for parts_log2 in [0u32, 1, 3] {
            let parts: Vec<JoinHashPartition> = (0..1u32 << parts_log2)
                .map(|w| JoinHashPartition::build(&build, w, parts_log2))
                .collect();
            assert_eq!(
                parts.iter().map(JoinHashPartition::len).sum::<usize>(),
                build.len(),
                "every build row lands in exactly one partition"
            );
            let mut got_b = Vec::new();
            let mut got_p = Vec::new();
            for (j, &key) in probe.iter().enumerate() {
                parts[join_partition_of(key, parts_log2) as usize]
                    .probe_into(key, j as u32, &mut got_b, &mut got_p);
            }
            assert_eq!(got_b, want_b, "parts_log2 {parts_log2}");
            assert_eq!(got_p, want_p, "parts_log2 {parts_log2}");
        }
        // A partition that received nothing still answers probes.
        let empty = JoinHashPartition::build(&[], 0, 0);
        assert!(empty.is_empty());
        let mut b = Vec::new();
        let mut p = Vec::new();
        empty.probe_into(1, 0, &mut b, &mut p);
        assert!(b.is_empty() && p.is_empty());
    }

    #[test]
    fn group_count_1_sorted_output() {
        let (k, c) = group_count_1(&[3, 1, 3, 3, 1]);
        assert_eq!(k, vec![1, 3]);
        assert_eq!(c, vec![2, 3]);
    }

    #[test]
    fn group_count_2_pairs() {
        let (a, b, c) = group_count_2(&[1, 1, 2, 1], &[5, 5, 6, 7]);
        assert_eq!(a, vec![1, 1, 2]);
        assert_eq!(b, vec![5, 7, 6]);
        assert_eq!(c, vec![2, 1, 1]);
    }

    #[test]
    fn group_count_sorted_1_matches_hash_path() {
        let keys = [1, 1, 1, 3, 5, 5];
        assert_eq!(group_count_sorted_1(&keys), group_count_1(&keys));
        assert_eq!(group_count_sorted_1(&[]), (vec![], vec![]));
        let uniform = [7u64; 10];
        assert_eq!(group_count_sorted_1(&uniform), (vec![7], vec![10]));
    }

    #[test]
    fn group_count_sorted_2_matches_hash_path() {
        let k0 = [1, 1, 1, 2, 2, 4];
        let k1 = [5, 5, 7, 0, 0, 9];
        assert_eq!(group_count_sorted_2(&k0, &k1), group_count_2(&k0, &k1));
        assert_eq!(group_count_sorted_2(&[], &[]), (vec![], vec![], vec![]));
    }

    #[test]
    fn distinct_sorted_matches_sort_based_distinct() {
        let c0 = [1, 1, 2, 2, 2, 3];
        let c1 = [4, 4, 4, 5, 5, 5];
        let fast = distinct_sorted(&[&c0, &c1], 6);
        assert_eq!(fast, vec![0, 2, 3, 5]);
        // Same distinct row *values* as the sort-based kernel (duplicate
        // positions are interchangeable there).
        let slow = distinct_rows(&[&c0, &c1], 6);
        let values = |sel: &[u32]| -> Vec<(u64, u64)> {
            let mut v: Vec<(u64, u64)> = sel
                .iter()
                .map(|&i| (c0[i as usize], c1[i as usize]))
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(values(&fast), values(&slow));
        assert!(distinct_sorted(&[], 0).is_empty());
    }

    #[test]
    fn distinct_rows_keeps_first_occurrence() {
        let c0 = [1, 1, 2, 1];
        let c1 = [9, 9, 8, 7];
        let mut d = distinct_rows(&[&c0, &c1], 4);
        d.sort_unstable();
        assert_eq!(d, vec![0, 2, 3]);
    }

    #[test]
    fn distinct_rows_empty() {
        assert!(distinct_rows(&[], 0).is_empty());
    }

    #[test]
    fn select_cmp_runs_matches_flat() {
        let flat = [5u64, 5, 1, 1, 1, 5, 2];
        let runs = RunCol::from_flat(&flat);
        for negate in [false, true] {
            for v in [0u64, 1, 2, 5] {
                assert_eq!(
                    select_cmp_runs(&runs, v, negate),
                    select_cmp(&flat, v, negate),
                    "value {v} negate {negate}"
                );
            }
        }
        assert!(select_cmp_runs(&RunCol::default(), 1, false).is_empty());
    }

    #[test]
    fn select_in_runs_matches_flat_on_both_probe_sizes() {
        let flat: Vec<u64> = (0..200).map(|i| (i / 7) % 23).collect();
        let runs = RunCol::from_flat(&flat);
        for n in [0usize, 3, 8, 9, 16] {
            let values: Vec<u64> = (0..n as u64).map(|v| v * 3).collect();
            assert_eq!(
                select_in_runs(&runs, &values),
                select_in(&flat, &values),
                "{n} probes"
            );
        }
    }

    #[test]
    fn select_in_sorted_matches_linear_select_in() {
        let mut col: Vec<u64> = (0..300).map(|i| (i * i) % 40).collect();
        col.sort_unstable();
        // Unsorted probe list with duplicates: output must still be the
        // ascending position vector of the linear kernel.
        let values = [9u64, 1, 30, 9, 250, 0];
        assert_eq!(select_in_sorted(&col, &values), select_in(&col, &values));
        let runs = RunCol::from_flat(&col);
        assert_eq!(
            select_in_sorted_runs(&runs, &values),
            select_in(&col, &values)
        );
        assert!(select_in_sorted(&[], &values).is_empty());
    }

    #[test]
    fn merge_join_runs_is_bit_identical_to_flat_merge_join() {
        let l: Vec<u64> = [1, 2, 2, 3, 7, 7, 7].to_vec();
        let r: Vec<u64> = [0, 2, 2, 3, 3, 7, 9].to_vec();
        let want = merge_join(&l, &r);
        let lr = RunCol::from_flat(&l);
        let rr = RunCol::from_flat(&r);
        for (name, got) in [
            (
                "rr",
                merge_join_runs(RunsView::Runs(&lr), RunsView::Runs(&rr)),
            ),
            (
                "rf",
                merge_join_runs(RunsView::Runs(&lr), RunsView::Flat(&r)),
            ),
            (
                "fr",
                merge_join_runs(RunsView::Flat(&l), RunsView::Runs(&rr)),
            ),
            (
                "ff",
                merge_join_runs(RunsView::Flat(&l), RunsView::Flat(&r)),
            ),
        ] {
            assert_eq!(got, want, "{name} differs (order matters)");
        }
        // Empty sides.
        let empty = RunCol::default();
        assert_eq!(
            merge_join_runs(RunsView::Runs(&empty), RunsView::Flat(&r)),
            (vec![], vec![])
        );
    }

    #[test]
    fn group_count_sorted_runs_reads_counts_off_run_lengths() {
        let flat = [1u64, 1, 1, 3, 5, 5];
        let runs = RunCol::from_flat(&flat);
        assert_eq!(group_count_sorted_runs(&runs), group_count_sorted_1(&flat));
        assert_eq!(
            group_count_sorted_runs(&RunCol::default()),
            (vec![], vec![])
        );
    }

    #[test]
    fn group_count_sorted_2_runs_matches_flat_twin() {
        let k0 = [1u64, 1, 1, 2, 2, 4];
        let k1 = [5u64, 5, 7, 0, 0, 9];
        let runs = RunCol::from_flat(&k0);
        assert_eq!(
            group_count_sorted_2_runs(&runs, &k1),
            group_count_sorted_2(&k0, &k1)
        );
        assert_eq!(
            group_count_sorted_2_runs(&RunCol::default(), &[]),
            (vec![], vec![], vec![])
        );
    }

    /// Reference for [`leapfrog_join`]: the left-deep [`merge_join`] fold
    /// joining every later input against input 0's key, with selection
    /// vectors composed back onto the original inputs.
    fn leapfrog_fold_reference(cols: &[Vec<u64>]) -> Vec<Vec<u32>> {
        let mut sels: Vec<Vec<u32>> = vec![(0..cols[0].len() as u32).collect()];
        let mut acc_keys: Vec<u64> = cols[0].clone();
        for c in &cols[1..] {
            let (ls, rs) = merge_join(&acc_keys, c);
            for s in &mut sels {
                *s = ls.iter().map(|&i| s[i as usize]).collect();
            }
            acc_keys = ls.iter().map(|&i| acc_keys[i as usize]).collect();
            sels.push(rs);
        }
        sels
    }

    #[test]
    fn leapfrog_join_is_bit_identical_to_the_merge_join_fold() {
        let shapes: [Vec<Vec<u64>>; 5] = [
            // Distinct keys, partial overlap.
            vec![vec![1, 3, 5, 7], vec![2, 3, 5, 9], vec![3, 4, 5]],
            // Heavy duplicates: cross-blocks in every input.
            vec![vec![2, 2, 2, 6, 6], vec![2, 2, 6], vec![1, 2, 6, 6]],
            // Two-way degenerates to a plain merge join.
            vec![vec![1, 2, 2, 3, 7], vec![0, 2, 2, 3, 3, 9]],
            // Disjoint: empty output after galloping past everything.
            vec![vec![1, 4, 8], vec![2, 5, 9], vec![3, 6, 10]],
            // Four-way with one selective driver.
            vec![
                (0..60).collect(),
                (0..60).map(|i| i / 2).collect(),
                vec![7, 30, 31, 59],
                (0..60).filter(|i| i % 3 == 0).collect(),
            ],
        ];
        for cols in &shapes {
            let want = leapfrog_fold_reference(cols);
            let flat: Vec<RunsView> = cols.iter().map(|c| RunsView::Flat(c)).collect();
            assert_eq!(leapfrog_join(&flat), want, "flat views on {cols:?}");
            let runcols: Vec<RunCol> = cols.iter().map(|c| RunCol::from_flat(c)).collect();
            let runs: Vec<RunsView> = runcols.iter().map(RunsView::Runs).collect();
            assert_eq!(leapfrog_join(&runs), want, "run views on {cols:?}");
            // Mixed flat/runs sides agree too.
            let mixed: Vec<RunsView> = cols
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    if i % 2 == 0 {
                        RunsView::Flat(c)
                    } else {
                        RunsView::Runs(&runcols[i])
                    }
                })
                .collect();
            assert_eq!(leapfrog_join(&mixed), want, "mixed views on {cols:?}");
        }
    }

    #[test]
    fn leapfrog_join_empty_input_short_circuits() {
        let a = vec![1u64, 2, 3];
        let empty: Vec<u64> = Vec::new();
        let got = leapfrog_join(&[RunsView::Flat(&a), RunsView::Flat(&empty)]);
        assert_eq!(got, vec![Vec::<u32>::new(), Vec::new()]);
    }

    #[test]
    fn runs_view_seek_and_run_end_agree_between_variants() {
        let flat = [1u64, 1, 4, 4, 4, 9];
        let runs = RunCol::from_flat(&flat);
        for from in 0..flat.len() {
            for v in 0..11 {
                assert_eq!(
                    RunsView::Runs(&runs).seek(v, from),
                    RunsView::Flat(&flat).seek(v, from),
                    "seek({v}, {from})"
                );
            }
            assert_eq!(
                RunsView::Runs(&runs).run_end_at(from),
                RunsView::Flat(&flat).run_end_at(from),
                "run_end_at({from})"
            );
        }
    }

    #[test]
    fn runs_view_lower_bound_agrees_between_variants() {
        let flat = [1u64, 1, 4, 4, 4, 9];
        let runs = RunCol::from_flat(&flat);
        for v in 0..11 {
            assert_eq!(
                RunsView::Runs(&runs).lower_bound(v),
                RunsView::Flat(&flat).lower_bound(v),
                "value {v}"
            );
        }
        assert_eq!(RunsView::Runs(&runs).value_at(3), 4);
        assert!(RunsView::Runs(&runs).is_runs());
        assert!(!RunsView::Flat(&flat).is_runs());
    }
}

#[cfg(all(test, feature = "proptests"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Merge join ≡ hash join ≡ nested loops for arbitrary sorted data.
        #[test]
        fn join_kernels_agree(
            mut l in proptest::collection::vec(0u64..30, 0..120),
            mut r in proptest::collection::vec(0u64..30, 0..120),
        ) {
            l.sort_unstable();
            r.sort_unstable();
            let mut nested: Vec<(u32, u32)> = Vec::new();
            for (i, a) in l.iter().enumerate() {
                for (j, b) in r.iter().enumerate() {
                    if a == b {
                        nested.push((i as u32, j as u32));
                    }
                }
            }
            nested.sort_unstable();

            let (mls, mrs) = merge_join(&l, &r);
            let mut m: Vec<(u32, u32)> = mls.into_iter().zip(mrs).collect();
            m.sort_unstable();
            prop_assert_eq!(&m, &nested);

            let (hls, hrs) = hash_join(&l, &r);
            let mut h: Vec<(u32, u32)> = hls.into_iter().zip(hrs).collect();
            h.sort_unstable();
            prop_assert_eq!(&h, &nested);
        }

        /// Sort-based distinct matches a hash-set reference.
        #[test]
        fn distinct_matches_reference(
            rows in proptest::collection::vec((0u64..8, 0u64..8), 0..150),
        ) {
            let c0: Vec<u64> = rows.iter().map(|r| r.0).collect();
            let c1: Vec<u64> = rows.iter().map(|r| r.1).collect();
            let sel = distinct_rows(&[&c0, &c1], rows.len());
            let got: std::collections::BTreeSet<(u64, u64)> =
                sel.iter().map(|&i| rows[i as usize]).collect();
            let want: std::collections::BTreeSet<(u64, u64)> =
                rows.iter().copied().collect();
            prop_assert_eq!(&got, &want);
            prop_assert_eq!(sel.len(), want.len());
        }

        /// Run-based kernels match their hash counterparts on sorted input.
        #[test]
        fn sorted_kernels_match_hash(
            rows in proptest::collection::vec((0u64..8, 0u64..8), 0..200),
        ) {
            let mut rows = rows;
            rows.sort_unstable();
            let k0: Vec<u64> = rows.iter().map(|r| r.0).collect();
            let k1: Vec<u64> = rows.iter().map(|r| r.1).collect();
            prop_assert_eq!(group_count_sorted_1(&k0), group_count_1(&k0));
            prop_assert_eq!(group_count_sorted_2(&k0, &k1), group_count_2(&k0, &k1));
            // Positions of duplicate rows are interchangeable; compare the
            // selected row values instead.
            let values = |sel: &[u32]| -> Vec<(u64, u64)> {
                sel.iter().map(|&i| rows[i as usize]).collect()
            };
            let fast = values(&distinct_sorted(&[&k0, &k1], rows.len()));
            let mut slow = values(&distinct_rows(&[&k0, &k1], rows.len()));
            slow.sort_unstable();
            prop_assert_eq!(fast, slow);
        }

        /// group_count_1 totals match input length.
        #[test]
        fn group_counts_sum_to_len(keys in proptest::collection::vec(0u64..10, 0..200)) {
            let (k, c) = group_count_1(&keys);
            prop_assert_eq!(c.iter().sum::<u64>() as usize, keys.len());
            prop_assert!(k.windows(2).all(|w| w[0] < w[1]));
        }

        /// RunCol round-trips arbitrary run-shaped data, through slices
        /// and monotone gathers included.
        #[test]
        fn runcol_roundtrips(
            shape in proptest::collection::vec((0u64..12, 1usize..6), 0..60),
        ) {
            let flat: Vec<u64> = shape
                .iter()
                .flat_map(|&(v, n)| std::iter::repeat(v).take(n))
                .collect();
            let runs = RunCol::from_flat(&flat);
            prop_assert_eq!(runs.expand(), flat.clone());
            prop_assert!(runs.run_count() <= flat.len());
            if !flat.is_empty() {
                let mid = flat.len() / 2;
                prop_assert_eq!(runs.slice(0..mid).expand(), flat[..mid].to_vec());
                prop_assert_eq!(runs.slice(mid..flat.len()).expand(), flat[mid..].to_vec());
                let sel: Vec<u32> = (0..flat.len() as u32).step_by(2).collect();
                let want: Vec<u64> = sel.iter().map(|&i| flat[i as usize]).collect();
                prop_assert_eq!(runs.gather(&sel).expand(), want);
            }
        }

        /// Run-aware selection kernels are bit-identical to their flat
        /// twins on random run-shaped inputs.
        #[test]
        fn run_select_kernels_match_flat_twins(
            shape in proptest::collection::vec((0u64..8, 1usize..5), 0..50),
            probes in proptest::collection::vec(0u64..10, 0..12),
            value in 0u64..10,
            negate in proptest::bool::ANY,
        ) {
            let flat: Vec<u64> = shape
                .iter()
                .flat_map(|&(v, n)| std::iter::repeat(v).take(n))
                .collect();
            let runs = RunCol::from_flat(&flat);
            prop_assert_eq!(
                select_cmp_runs(&runs, value, negate),
                select_cmp(&flat, value, negate)
            );
            prop_assert_eq!(select_in_runs(&runs, &probes), select_in(&flat, &probes));
            // Sorted variants need a sorted column.
            let mut sorted = flat.clone();
            sorted.sort_unstable();
            let sorted_runs = RunCol::from_flat(&sorted);
            prop_assert_eq!(
                select_in_sorted(&sorted, &probes),
                select_in(&sorted, &probes)
            );
            prop_assert_eq!(
                select_in_sorted_runs(&sorted_runs, &probes),
                select_in(&sorted, &probes)
            );
        }

        /// The run-view merge join emits the exact flat merge-join pair
        /// stream on every flat/runs side combination.
        #[test]
        fn merge_join_runs_matches_flat(
            ls in proptest::collection::vec((0u64..10, 1usize..4), 0..30),
            rs in proptest::collection::vec((0u64..10, 1usize..4), 0..30),
        ) {
            let mut l: Vec<u64> = ls.iter().flat_map(|&(v, n)| std::iter::repeat(v).take(n)).collect();
            let mut r: Vec<u64> = rs.iter().flat_map(|&(v, n)| std::iter::repeat(v).take(n)).collect();
            l.sort_unstable();
            r.sort_unstable();
            let lr = RunCol::from_flat(&l);
            let rr = RunCol::from_flat(&r);
            let want = merge_join(&l, &r);
            prop_assert_eq!(merge_join_runs(RunsView::Runs(&lr), RunsView::Runs(&rr)), want.clone());
            prop_assert_eq!(merge_join_runs(RunsView::Runs(&lr), RunsView::Flat(&r)), want.clone());
            prop_assert_eq!(merge_join_runs(RunsView::Flat(&l), RunsView::Runs(&rr)), want);
        }

        /// Run-based aggregation reads counts off run lengths, identical
        /// to the scanning kernels.
        #[test]
        fn run_group_counts_match_flat(
            rows in proptest::collection::vec((0u64..8, 0u64..8), 0..150),
        ) {
            let mut rows = rows;
            rows.sort_unstable();
            let k0: Vec<u64> = rows.iter().map(|r| r.0).collect();
            let k1: Vec<u64> = rows.iter().map(|r| r.1).collect();
            let runs0 = RunCol::from_flat(&k0);
            prop_assert_eq!(group_count_sorted_runs(&runs0), group_count_sorted_1(&k0));
            prop_assert_eq!(
                group_count_sorted_2_runs(&runs0, &k1),
                group_count_sorted_2(&k0, &k1)
            );
        }
    }
}
