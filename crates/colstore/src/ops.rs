//! Vectorized operator kernels.
//!
//! Each kernel is a tight loop over column vectors — the column-at-a-time
//! execution style whose processing efficiency the paper credits for
//! column-stores being "particularly suited for RDF data management".

use std::collections::HashMap;
use std::hash::BuildHasherDefault;

use swans_rdf::hash::FxHasher;

type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Positions where `col[i] == value` (or `!=` when `negate`).
pub fn select_cmp(col: &[u64], value: u64, negate: bool) -> Vec<u32> {
    let mut out = Vec::new();
    if negate {
        for (i, &v) in col.iter().enumerate() {
            if v != value {
                out.push(i as u32);
            }
        }
    } else {
        for (i, &v) in col.iter().enumerate() {
            if v == value {
                out.push(i as u32);
            }
        }
    }
    out
}

/// Below this many `IN`-list values a linear membership scan beats
/// building a hash set (the common `FILTER IN` case has a handful).
const SELECT_IN_LINEAR_MAX: usize = 8;

/// Positions where `col[i]` is in `values`.
pub fn select_in(col: &[u64], values: &[u64]) -> Vec<u32> {
    let mut out = Vec::new();
    if values.len() <= SELECT_IN_LINEAR_MAX {
        for (i, &v) in col.iter().enumerate() {
            if values.contains(&v) {
                out.push(i as u32);
            }
        }
    } else {
        let set: std::collections::HashSet<u64, BuildHasherDefault<FxHasher>> =
            values.iter().copied().collect();
        for (i, &v) in col.iter().enumerate() {
            if set.contains(&v) {
                out.push(i as u32);
            }
        }
    }
    out
}

/// A hash table over a build column, with chained duplicates stored
/// compactly (no per-key allocations).
pub struct JoinHash {
    heads: FxMap<u64, u32>,
    /// `next[i]` = next build row with the same key, `u32::MAX` ends.
    next: Vec<u32>,
}

impl JoinHash {
    /// Builds the table over `build`.
    pub fn build(build: &[u64]) -> Self {
        let mut heads: FxMap<u64, u32> =
            FxMap::with_capacity_and_hasher(build.len(), Default::default());
        let mut next = vec![u32::MAX; build.len()];
        for (i, &key) in build.iter().enumerate() {
            let e = heads.entry(key).or_insert(u32::MAX);
            next[i] = *e;
            *e = i as u32;
        }
        Self { heads, next }
    }

    /// Probes with `probe`, emitting matching `(build_pos, probe_pos)`
    /// pairs.
    pub fn probe(&self, probe: &[u64]) -> (Vec<u32>, Vec<u32>) {
        // At least one output pair per matching probe row; reserving the
        // probe length up front skips the early doubling re-allocations.
        let mut build_sel = Vec::with_capacity(probe.len());
        let mut probe_sel = Vec::with_capacity(probe.len());
        for (j, key) in probe.iter().enumerate() {
            if let Some(&head) = self.heads.get(key) {
                let mut i = head;
                while i != u32::MAX {
                    build_sel.push(i);
                    probe_sel.push(j as u32);
                    i = self.next[i as usize];
                }
            }
        }
        (build_sel, probe_sel)
    }
}

/// The hash partition a key belongs to when the build side is split into
/// `1 << parts_log2` partitions. A multiplicative mix of the key's bits,
/// deliberately *not* the bucket function of [`JoinHash`]'s map, so a
/// pathological key set cannot degrade both at once.
#[inline]
pub fn join_partition_of(key: u64, parts_log2: u32) -> u32 {
    if parts_log2 == 0 {
        return 0;
    }
    ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) & ((1 << parts_log2) - 1)) as u32
}

/// One partition of a hash-partitioned join build side.
///
/// Each worker builds the partition for its own key range by scanning the
/// build column and chaining only the keys that hash into its partition —
/// positions are inserted in ascending order, so the per-key chains are
/// *identical* to the ones an unpartitioned [`JoinHash`] would hold, and
/// a probe therefore emits exactly the sequential pair order. The tables
/// are built once per join and shared (read-only) across every probe
/// morsel — probe scratch, not the build side, is what morsels reuse.
pub struct JoinHashPartition {
    /// Key → most-recently-inserted *local* entry id.
    heads: FxMap<u64, u32>,
    /// `next[e]` = previous local entry with the same key (`u32::MAX`
    /// ends the chain).
    next: Vec<u32>,
    /// Local entry id → global build position.
    pos: Vec<u32>,
}

impl JoinHashPartition {
    /// Builds partition `part` (of `1 << parts_log2`) over `build` by
    /// scanning the whole column. Prefer
    /// [`JoinHashPartition::from_positions`] with a pre-scattered
    /// position list when building several partitions — this form re-scans
    /// `build` once per partition.
    pub fn build(build: &[u64], part: u32, parts_log2: u32) -> Self {
        Self::from_positions(
            build,
            build
                .iter()
                .enumerate()
                .filter(|&(_, &key)| join_partition_of(key, parts_log2) == part)
                .map(|(i, _)| i as u32),
        )
    }

    /// Builds a partition table from this partition's build positions,
    /// supplied in ascending order (one scatter pass produces the lists
    /// for every partition at once). Chains end up identical to the ones
    /// an unpartitioned [`JoinHash`] holds for these keys.
    pub fn from_positions(build: &[u64], positions: impl IntoIterator<Item = u32>) -> Self {
        let mut heads: FxMap<u64, u32> = FxMap::default();
        let mut next = Vec::new();
        let mut pos = Vec::new();
        for i in positions {
            let e = heads.entry(build[i as usize]).or_insert(u32::MAX);
            next.push(*e);
            pos.push(i);
            *e = (next.len() - 1) as u32;
        }
        Self { heads, next, pos }
    }

    /// Appends every `(build_pos, probe_pos)` match for `key` to the
    /// caller's output buffers (build positions in descending order, like
    /// [`JoinHash::probe`]).
    #[inline]
    pub fn probe_into(
        &self,
        key: u64,
        probe_pos: u32,
        build_sel: &mut Vec<u32>,
        probe_sel: &mut Vec<u32>,
    ) {
        if let Some(&head) = self.heads.get(&key) {
            let mut e = head;
            while e != u32::MAX {
                build_sel.push(self.pos[e as usize]);
                probe_sel.push(probe_pos);
                e = self.next[e as usize];
            }
        }
    }

    /// Number of build entries in this partition.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// True when no build key hashed into this partition.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }
}

/// Hash equi-join: matching `(left_pos, right_pos)` pairs. Builds on the
/// smaller input.
pub fn hash_join(left: &[u64], right: &[u64]) -> (Vec<u32>, Vec<u32>) {
    if left.len() <= right.len() {
        JoinHash::build(left).probe(right)
    } else {
        let (r, l) = JoinHash::build(right).probe(left);
        (l, r)
    }
}

/// Merge equi-join of two sorted columns: matching `(left_pos, right_pos)`
/// pairs. The "fast (linear) merge joins" the vertically-partitioned
/// proposal advertises for subject-subject joins.
pub fn merge_join(left: &[u64], right: &[u64]) -> (Vec<u32>, Vec<u32>) {
    debug_assert!(left.windows(2).all(|w| w[0] <= w[1]));
    debug_assert!(right.windows(2).all(|w| w[0] <= w[1]));
    let mut l = 0usize;
    let mut r = 0usize;
    // Every match emits at least one pair per overlapping key; the smaller
    // side is a cheap lower bound that skips early re-allocations.
    let mut left_sel = Vec::with_capacity(left.len().min(right.len()));
    let mut right_sel = Vec::with_capacity(left.len().min(right.len()));
    while l < left.len() && r < right.len() {
        match left[l].cmp(&right[r]) {
            std::cmp::Ordering::Less => l += 1,
            std::cmp::Ordering::Greater => r += 1,
            std::cmp::Ordering::Equal => {
                let v = left[l];
                // Runs of one key are typically short: advance linearly
                // (a binary search over the remainder costs log(n) per
                // run and dominates on near-distinct columns).
                let mut l_end = l + 1;
                while l_end < left.len() && left[l_end] == v {
                    l_end += 1;
                }
                let mut r_end = r + 1;
                while r_end < right.len() && right[r_end] == v {
                    r_end += 1;
                }
                for li in l..l_end {
                    for ri in r..r_end {
                        left_sel.push(li as u32);
                        right_sel.push(ri as u32);
                    }
                }
                l = l_end;
                r = r_end;
            }
        }
    }
    (left_sel, right_sel)
}

/// Groups by one key column; returns `(keys, counts)`.
pub fn group_count_1(keys: &[u64]) -> (Vec<u64>, Vec<u64>) {
    let mut map: FxMap<u64, u64> = FxMap::default();
    for &k in keys {
        *map.entry(k).or_insert(0) += 1;
    }
    let mut pairs: Vec<(u64, u64)> = map.into_iter().collect();
    pairs.sort_unstable();
    pairs.into_iter().unzip()
}

/// Groups by two key columns; returns `(keys0, keys1, counts)`.
pub fn group_count_2(k0: &[u64], k1: &[u64]) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
    debug_assert_eq!(k0.len(), k1.len());
    let mut map: FxMap<(u64, u64), u64> = FxMap::default();
    for (&a, &b) in k0.iter().zip(k1) {
        *map.entry((a, b)).or_insert(0) += 1;
    }
    let mut trips: Vec<((u64, u64), u64)> = map.into_iter().collect();
    trips.sort_unstable();
    let mut o0 = Vec::with_capacity(trips.len());
    let mut o1 = Vec::with_capacity(trips.len());
    let mut oc = Vec::with_capacity(trips.len());
    for ((a, b), c) in trips {
        o0.push(a);
        o1.push(b);
        oc.push(c);
    }
    (o0, o1, oc)
}

/// Run-based group-count over one *sorted* key column; returns
/// `(keys, counts)`. Equal keys are adjacent, so each group is one run —
/// no hash table, no output sort.
pub fn group_count_sorted_1(keys: &[u64]) -> (Vec<u64>, Vec<u64>) {
    debug_assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    let mut ks = Vec::new();
    let mut cs = Vec::new();
    let mut i = 0usize;
    while i < keys.len() {
        let v = keys[i];
        let mut j = i + 1;
        while j < keys.len() && keys[j] == v {
            j += 1;
        }
        ks.push(v);
        cs.push((j - i) as u64);
        i = j;
    }
    (ks, cs)
}

/// Run-based group-count over two key columns sorted lexicographically by
/// `(k0, k1)`; returns `(keys0, keys1, counts)`.
pub fn group_count_sorted_2(k0: &[u64], k1: &[u64]) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
    debug_assert_eq!(k0.len(), k1.len());
    debug_assert!((1..k0.len()).all(|i| (k0[i - 1], k1[i - 1]) <= (k0[i], k1[i])));
    let mut o0 = Vec::new();
    let mut o1 = Vec::new();
    let mut oc = Vec::new();
    let mut i = 0usize;
    while i < k0.len() {
        let (a, b) = (k0[i], k1[i]);
        let mut j = i + 1;
        while j < k0.len() && k0[j] == a && k1[j] == b {
            j += 1;
        }
        o0.push(a);
        o1.push(b);
        oc.push((j - i) as u64);
        i = j;
    }
    (o0, o1, oc)
}

/// Positions of the first row of each run in input already sorted so that
/// equal rows are adjacent — the linear form of [`distinct_rows`].
pub fn distinct_sorted(cols: &[&[u64]], len: usize) -> Vec<u32> {
    let mut out = Vec::new();
    for i in 0..len {
        if i == 0 || cols.iter().any(|c| c[i] != c[i - 1]) {
            out.push(i as u32);
        }
    }
    out
}

/// Positions of the first occurrence of each distinct row (sort-based).
/// Ties break on position, so the representative of each duplicate set
/// really is its first occurrence — the same canonical choice the
/// morsel-parallel distinct makes, keeping the two paths bit-identical.
pub fn distinct_rows(cols: &[&[u64]], len: usize) -> Vec<u32> {
    if len == 0 {
        return Vec::new();
    }
    let mut idx: Vec<u32> = (0..len as u32).collect();
    idx.sort_unstable_by(|&a, &b| {
        for c in cols {
            match c[a as usize].cmp(&c[b as usize]) {
                std::cmp::Ordering::Equal => continue,
                o => return o,
            }
        }
        a.cmp(&b)
    });
    let mut out = Vec::new();
    let mut prev: Option<u32> = None;
    for &i in &idx {
        let dup = prev.is_some_and(|p| cols.iter().all(|c| c[p as usize] == c[i as usize]));
        if !dup {
            out.push(i);
        }
        prev = Some(i);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_cmp_eq_and_ne() {
        let col = [5, 1, 5, 2];
        assert_eq!(select_cmp(&col, 5, false), vec![0, 2]);
        assert_eq!(select_cmp(&col, 5, true), vec![1, 3]);
    }

    #[test]
    fn select_in_filters_by_set() {
        let col = [9, 1, 2, 9, 3];
        assert_eq!(select_in(&col, &[1, 3]), vec![1, 4]);
        assert_eq!(select_in(&col, &[]), Vec::<u32>::new());
    }

    /// The linear small-list path and the hash-set path agree at and
    /// around the crossover size.
    #[test]
    fn select_in_linear_and_hashed_paths_agree() {
        let col: Vec<u64> = (0..200).map(|i| i % 23).collect();
        for n in [1, 7, 8, 9, 16] {
            let values: Vec<u64> = (0..n as u64).map(|v| v * 3).collect();
            let want: Vec<u32> = col
                .iter()
                .enumerate()
                .filter(|&(_, v)| values.contains(v))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(select_in(&col, &values), want, "{n} values");
        }
    }

    #[test]
    fn hash_join_finds_all_pairs() {
        let l = [1, 2, 2, 3];
        let r = [2, 2, 4];
        let (ls, rs) = hash_join(&l, &r);
        let mut pairs: Vec<(u32, u32)> = ls.into_iter().zip(rs).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(1, 0), (1, 1), (2, 0), (2, 1)]);
    }

    #[test]
    fn merge_join_matches_hash_join() {
        let l = [1, 2, 2, 3, 7];
        let r = [0, 2, 2, 3, 3, 9];
        let (mls, mrs) = merge_join(&l, &r);
        let (hls, hrs) = hash_join(&l, &r);
        let mut m: Vec<(u32, u32)> = mls.into_iter().zip(mrs).collect();
        let mut h: Vec<(u32, u32)> = hls.into_iter().zip(hrs).collect();
        m.sort_unstable();
        h.sort_unstable();
        assert_eq!(m, h);
        assert_eq!(m.len(), 2 * 2 + 2);
    }

    /// A hash-partitioned build probed partition-by-key emits *exactly*
    /// the sequential [`JoinHash`] pair stream — same pairs, same order —
    /// so morsel-parallel joins are bit-identical to sequential ones.
    #[test]
    fn partitioned_join_matches_joinhash_exactly() {
        let build: Vec<u64> = (0..500).map(|i| i % 37).collect();
        let probe: Vec<u64> = (0..300).map(|i| (i * 7) % 41).collect();
        let seq = JoinHash::build(&build);
        let (want_b, want_p) = seq.probe(&probe);
        for parts_log2 in [0u32, 1, 3] {
            let parts: Vec<JoinHashPartition> = (0..1u32 << parts_log2)
                .map(|w| JoinHashPartition::build(&build, w, parts_log2))
                .collect();
            assert_eq!(
                parts.iter().map(JoinHashPartition::len).sum::<usize>(),
                build.len(),
                "every build row lands in exactly one partition"
            );
            let mut got_b = Vec::new();
            let mut got_p = Vec::new();
            for (j, &key) in probe.iter().enumerate() {
                parts[join_partition_of(key, parts_log2) as usize]
                    .probe_into(key, j as u32, &mut got_b, &mut got_p);
            }
            assert_eq!(got_b, want_b, "parts_log2 {parts_log2}");
            assert_eq!(got_p, want_p, "parts_log2 {parts_log2}");
        }
        // A partition that received nothing still answers probes.
        let empty = JoinHashPartition::build(&[], 0, 0);
        assert!(empty.is_empty());
        let mut b = Vec::new();
        let mut p = Vec::new();
        empty.probe_into(1, 0, &mut b, &mut p);
        assert!(b.is_empty() && p.is_empty());
    }

    #[test]
    fn group_count_1_sorted_output() {
        let (k, c) = group_count_1(&[3, 1, 3, 3, 1]);
        assert_eq!(k, vec![1, 3]);
        assert_eq!(c, vec![2, 3]);
    }

    #[test]
    fn group_count_2_pairs() {
        let (a, b, c) = group_count_2(&[1, 1, 2, 1], &[5, 5, 6, 7]);
        assert_eq!(a, vec![1, 1, 2]);
        assert_eq!(b, vec![5, 7, 6]);
        assert_eq!(c, vec![2, 1, 1]);
    }

    #[test]
    fn group_count_sorted_1_matches_hash_path() {
        let keys = [1, 1, 1, 3, 5, 5];
        assert_eq!(group_count_sorted_1(&keys), group_count_1(&keys));
        assert_eq!(group_count_sorted_1(&[]), (vec![], vec![]));
        let uniform = [7u64; 10];
        assert_eq!(group_count_sorted_1(&uniform), (vec![7], vec![10]));
    }

    #[test]
    fn group_count_sorted_2_matches_hash_path() {
        let k0 = [1, 1, 1, 2, 2, 4];
        let k1 = [5, 5, 7, 0, 0, 9];
        assert_eq!(group_count_sorted_2(&k0, &k1), group_count_2(&k0, &k1));
        assert_eq!(group_count_sorted_2(&[], &[]), (vec![], vec![], vec![]));
    }

    #[test]
    fn distinct_sorted_matches_sort_based_distinct() {
        let c0 = [1, 1, 2, 2, 2, 3];
        let c1 = [4, 4, 4, 5, 5, 5];
        let fast = distinct_sorted(&[&c0, &c1], 6);
        assert_eq!(fast, vec![0, 2, 3, 5]);
        // Same distinct row *values* as the sort-based kernel (duplicate
        // positions are interchangeable there).
        let slow = distinct_rows(&[&c0, &c1], 6);
        let values = |sel: &[u32]| -> Vec<(u64, u64)> {
            let mut v: Vec<(u64, u64)> = sel
                .iter()
                .map(|&i| (c0[i as usize], c1[i as usize]))
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(values(&fast), values(&slow));
        assert!(distinct_sorted(&[], 0).is_empty());
    }

    #[test]
    fn distinct_rows_keeps_first_occurrence() {
        let c0 = [1, 1, 2, 1];
        let c1 = [9, 9, 8, 7];
        let mut d = distinct_rows(&[&c0, &c1], 4);
        d.sort_unstable();
        assert_eq!(d, vec![0, 2, 3]);
    }

    #[test]
    fn distinct_rows_empty() {
        assert!(distinct_rows(&[], 0).is_empty());
    }
}

#[cfg(all(test, feature = "proptests"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Merge join ≡ hash join ≡ nested loops for arbitrary sorted data.
        #[test]
        fn join_kernels_agree(
            mut l in proptest::collection::vec(0u64..30, 0..120),
            mut r in proptest::collection::vec(0u64..30, 0..120),
        ) {
            l.sort_unstable();
            r.sort_unstable();
            let mut nested: Vec<(u32, u32)> = Vec::new();
            for (i, a) in l.iter().enumerate() {
                for (j, b) in r.iter().enumerate() {
                    if a == b {
                        nested.push((i as u32, j as u32));
                    }
                }
            }
            nested.sort_unstable();

            let (mls, mrs) = merge_join(&l, &r);
            let mut m: Vec<(u32, u32)> = mls.into_iter().zip(mrs).collect();
            m.sort_unstable();
            prop_assert_eq!(&m, &nested);

            let (hls, hrs) = hash_join(&l, &r);
            let mut h: Vec<(u32, u32)> = hls.into_iter().zip(hrs).collect();
            h.sort_unstable();
            prop_assert_eq!(&h, &nested);
        }

        /// Sort-based distinct matches a hash-set reference.
        #[test]
        fn distinct_matches_reference(
            rows in proptest::collection::vec((0u64..8, 0u64..8), 0..150),
        ) {
            let c0: Vec<u64> = rows.iter().map(|r| r.0).collect();
            let c1: Vec<u64> = rows.iter().map(|r| r.1).collect();
            let sel = distinct_rows(&[&c0, &c1], rows.len());
            let got: std::collections::BTreeSet<(u64, u64)> =
                sel.iter().map(|&i| rows[i as usize]).collect();
            let want: std::collections::BTreeSet<(u64, u64)> =
                rows.iter().copied().collect();
            prop_assert_eq!(&got, &want);
            prop_assert_eq!(sel.len(), want.len());
        }

        /// Run-based kernels match their hash counterparts on sorted input.
        #[test]
        fn sorted_kernels_match_hash(
            rows in proptest::collection::vec((0u64..8, 0u64..8), 0..200),
        ) {
            let mut rows = rows;
            rows.sort_unstable();
            let k0: Vec<u64> = rows.iter().map(|r| r.0).collect();
            let k1: Vec<u64> = rows.iter().map(|r| r.1).collect();
            prop_assert_eq!(group_count_sorted_1(&k0), group_count_1(&k0));
            prop_assert_eq!(group_count_sorted_2(&k0, &k1), group_count_2(&k0, &k1));
            // Positions of duplicate rows are interchangeable; compare the
            // selected row values instead.
            let values = |sel: &[u32]| -> Vec<(u64, u64)> {
                sel.iter().map(|&i| rows[i as usize]).collect()
            };
            let fast = values(&distinct_sorted(&[&k0, &k1], rows.len()));
            let mut slow = values(&distinct_rows(&[&k0, &k1], rows.len()));
            slow.sort_unstable();
            prop_assert_eq!(fast, slow);
        }

        /// group_count_1 totals match input length.
        #[test]
        fn group_counts_sum_to_len(keys in proptest::collection::vec(0u64..10, 0..200)) {
            let (k, c) = group_count_1(&keys);
            prop_assert_eq!(c.iter().sum::<u64>() as usize, keys.len());
            prop_assert!(k.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
