//! A single stored column backed by a disk segment.

use std::ops::Range;
use std::sync::Arc;

use swans_storage::{SegmentId, StorageManager};

/// One column of a stored table.
///
/// The in-memory vector is the authoritative data (this is a simulation —
/// the "disk" only accounts I/O); the segment describes its on-disk
/// footprint. Reading the column touches the whole segment, the
/// column-store's unit of I/O. The data is held behind an `Arc` so that
/// full-column scans can hand out zero-copy references (BAT sharing).
#[derive(Debug, Clone)]
pub struct Column {
    data: Arc<Vec<u64>>,
    segment: SegmentId,
    sorted: bool,
    storage: StorageManager,
}

impl Column {
    /// Registers a column with `storage`.
    ///
    /// `sorted` marks the column as non-decreasing (enables binary-search
    /// selection). `rle_compressed` stores the segment run-length encoded —
    /// only meaningful for sorted columns, where equal values are adjacent;
    /// the segment then holds `(value, run_length)` pairs.
    pub fn new(
        storage: &StorageManager,
        name: &str,
        data: Vec<u64>,
        sorted: bool,
        rle_compressed: bool,
    ) -> Self {
        let plain_bytes = data.len() as u64 * 8;
        let bytes = if rle_compressed {
            debug_assert!(sorted, "RLE layout requires a sorted column");
            // (value, run_length) pairs — but a storage engine falls back
            // to the plain layout when RLE would not pay off (a sorted but
            // near-distinct column).
            (count_runs(&data) * 16).min(plain_bytes)
        } else {
            plain_bytes
        };
        let segment = storage.create_segment(name, bytes.max(1));
        Self {
            data: Arc::new(data),
            segment,
            sorted,
            storage: storage.clone(),
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the column has no values.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Whether the column is sorted non-decreasing.
    pub fn is_sorted(&self) -> bool {
        self.sorted
    }

    /// The column's on-disk footprint in bytes.
    pub fn disk_bytes(&self) -> u64 {
        self.storage.segment_pages(self.segment) as u64 * swans_storage::PAGE_SIZE as u64
    }

    /// Reads the column: touches the whole segment (charged on first use,
    /// free once resident) and returns the values.
    pub fn read(&self) -> &[u64] {
        self.storage.touch_segment(self.segment);
        &self.data
    }

    /// Reads the column and returns a zero-copy shared handle (BAT
    /// sharing for full-column scan outputs).
    pub fn read_shared(&self) -> Arc<Vec<u64>> {
        self.storage.touch_segment(self.segment);
        self.data.clone()
    }

    /// The values without I/O accounting (internal/test use only).
    pub fn peek(&self) -> &[u64] {
        &self.data
    }

    /// Positions holding `value` in a sorted column (binary search; charges
    /// the column read).
    ///
    /// # Panics
    /// Panics if the column is not sorted.
    pub fn eq_range(&self, value: u64) -> Range<usize> {
        assert!(self.sorted, "eq_range requires a sorted column");
        let data = self.read();
        let lo = data.partition_point(|&x| x < value);
        let hi = data.partition_point(|&x| x <= value);
        lo..hi
    }
}

/// Number of equal-value runs in a slice.
fn count_runs(data: &[u64]) -> u64 {
    if data.is_empty() {
        return 0;
    }
    1 + data.windows(2).filter(|w| w[0] != w[1]).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use swans_storage::{MachineProfile, PAGE_SIZE};

    fn mgr() -> StorageManager {
        StorageManager::new(MachineProfile::B)
    }

    #[test]
    fn read_touches_whole_segment_once() {
        let m = mgr();
        let c = Column::new(&m, "c", (0..10_000).collect(), true, false);
        m.reset_stats();
        let _ = c.read();
        let cold = m.stats().bytes_read;
        assert_eq!(cold, c.disk_bytes());
        let _ = c.read();
        assert_eq!(m.stats().bytes_read, cold, "second read is free (hot)");
    }

    #[test]
    fn eq_range_matches_linear_scan() {
        let m = mgr();
        let data = vec![1, 1, 2, 2, 2, 5, 7, 7];
        let c = Column::new(&m, "c", data.clone(), true, false);
        for v in 0..9 {
            let r = c.eq_range(v);
            let want: Vec<usize> = data
                .iter()
                .enumerate()
                .filter(|&(_, &x)| x == v)
                .map(|(i, _)| i)
                .collect();
            if want.is_empty() {
                assert!(r.is_empty(), "value {v}");
            } else {
                assert_eq!(r, want[0]..want[want.len() - 1] + 1, "value {v}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "requires a sorted column")]
    fn eq_range_panics_on_unsorted() {
        let m = mgr();
        let c = Column::new(&m, "c", vec![3, 1, 2], false, false);
        let _ = c.eq_range(1);
    }

    #[test]
    fn rle_never_inflates_distinct_columns() {
        let m = mgr();
        let data: Vec<u64> = (0..100_000).collect(); // all runs length 1
        let plain = Column::new(&m, "p", data.clone(), true, false);
        let rle = Column::new(&m, "r", data, true, true);
        assert_eq!(rle.disk_bytes(), plain.disk_bytes());
    }

    #[test]
    fn rle_compression_shrinks_low_cardinality_sorted_column() {
        let m = mgr();
        // 100k values, 4 runs.
        let mut data = vec![0u64; 25_000];
        data.extend(vec![1u64; 25_000]);
        data.extend(vec![2u64; 25_000]);
        data.extend(vec![3u64; 25_000]);
        let plain = Column::new(&m, "p", data.clone(), true, false);
        let rle = Column::new(&m, "r", data, true, true);
        assert_eq!(rle.disk_bytes(), PAGE_SIZE as u64, "4 runs fit one page");
        assert!(plain.disk_bytes() > 90 * PAGE_SIZE as u64);
    }

    #[test]
    fn count_runs_counts_transitions() {
        assert_eq!(count_runs(&[]), 0);
        assert_eq!(count_runs(&[5]), 1);
        assert_eq!(count_runs(&[5, 5, 5]), 1);
        assert_eq!(count_runs(&[1, 1, 2, 3, 3]), 3);
    }
}
