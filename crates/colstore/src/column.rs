//! A single stored column backed by a disk segment.

use std::ops::Range;
use std::sync::Arc;

use swans_storage::{SegmentId, StorageManager};

use crate::chunk::RunCol;

/// One column of a stored table.
///
/// The in-memory vector is the authoritative data (this is a simulation —
/// the "disk" only accounts I/O); the segment describes its on-disk
/// footprint. Reading the column touches the whole segment, the
/// column-store's unit of I/O. The data is held behind an `Arc` so that
/// full-column scans can hand out zero-copy references (BAT sharing).
#[derive(Debug, Clone)]
pub struct Column {
    data: Arc<Vec<u64>>,
    /// The RLE run representation of a compressed sorted column — scans
    /// hand it out directly (compressed execution) and equality
    /// predicates resolve against it instead of the decompressed values.
    runs: Option<Arc<RunCol>>,
    segment: SegmentId,
    sorted: bool,
    /// Whether RLE is *considered* for this column. The actual decision
    /// is taken per data set by [`plan_layout`] (compress only when the
    /// run headers are smaller than the plain values) and re-taken on
    /// every [`Column::rewrite`], so a merge can never silently drop or
    /// inflate compression.
    rle: bool,
    storage: StorageManager,
}

impl Column {
    /// Registers a column with `storage`.
    ///
    /// `sorted` marks the column as non-decreasing (enables binary-search
    /// selection). `rle` enables RLE *consideration* — only meaningful for
    /// sorted columns, where equal values are adjacent. Whether the column
    /// is actually stored run-length encoded is auto-decided from the
    /// data: the segment holds `(value, run_length)` pairs only when
    /// `run_count * 16 < plain_bytes`, i.e. when compression pays.
    pub fn new(
        storage: &StorageManager,
        name: &str,
        data: Vec<u64>,
        sorted: bool,
        rle: bool,
    ) -> Self {
        let (bytes, runs) = plan_layout(&data, sorted, rle);
        let segment = storage.create_segment(name, bytes.max(1));
        Self {
            data: Arc::new(data),
            runs,
            segment,
            sorted,
            rle,
            storage: storage.clone(),
        }
    }

    /// Replaces the column's contents in place — the merge path.
    ///
    /// The layout decision of [`Column::new`] is re-taken for the new data
    /// under the column's own RLE policy (a merge that destroys the runs
    /// falls back to the plain layout; one that creates them compresses),
    /// the backing segment is resized to the new footprint (evicting any
    /// stale cached pages), and the whole rewritten segment is charged as
    /// written I/O.
    pub fn rewrite(&mut self, data: Vec<u64>, sorted: bool) {
        let (bytes, runs) = plan_layout(&data, sorted, self.rle);
        self.storage.resize_segment(self.segment, bytes.max(1));
        self.storage.write_segment(self.segment);
        self.data = Arc::new(data);
        self.runs = runs;
        self.sorted = sorted;
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the column has no values.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Whether the column is sorted non-decreasing.
    pub fn is_sorted(&self) -> bool {
        self.sorted
    }

    /// The column's on-disk footprint in bytes.
    pub fn disk_bytes(&self) -> u64 {
        self.storage.segment_pages(self.segment) as u64 * swans_storage::PAGE_SIZE as u64
    }

    /// Reads the column: touches the whole segment (charged on first use,
    /// free once resident) and returns the values.
    pub fn read(&self) -> &[u64] {
        self.storage.touch_segment(self.segment);
        &self.data
    }

    /// Reads the column and returns a zero-copy shared handle (BAT
    /// sharing for full-column scan outputs).
    pub fn read_shared(&self) -> Arc<Vec<u64>> {
        self.storage.touch_segment(self.segment);
        self.data.clone()
    }

    /// Reads the column *as runs*: touches the (compressed) segment and
    /// returns the shared run representation without materializing the
    /// decompressed values — the entry point of compressed execution.
    /// `None` when the column is not stored run-length encoded.
    pub fn read_runs(&self) -> Option<Arc<RunCol>> {
        let runs = self.runs.as_ref()?;
        self.storage.touch_segment(self.segment);
        Some(runs.clone())
    }

    /// The values without I/O accounting (internal/test use only).
    pub fn peek(&self) -> &[u64] {
        &self.data
    }

    /// The stored run representation without I/O accounting — the
    /// engine's planning-time peek (e.g. deciding whether run emission
    /// pays) must not charge reads.
    pub fn peek_runs(&self) -> Option<&RunCol> {
        self.runs.as_deref()
    }

    /// Whether the column carries RLE run headers (compressed layout).
    pub fn has_runs(&self) -> bool {
        self.runs.is_some()
    }

    /// Number of stored runs (0 when not RLE-compressed).
    pub fn run_count(&self) -> usize {
        self.runs.as_ref().map_or(0, |r| r.run_count())
    }

    /// Positions holding `value` in a sorted column (charges the column
    /// read). On an RLE-compressed column the answer comes straight from
    /// the run headers — a binary search over the (much shorter) run list
    /// instead of the decompressed values; plain sorted columns binary
    /// search the values.
    ///
    /// # Panics
    /// Panics if the column is not sorted.
    pub fn eq_range(&self, value: u64) -> Range<usize> {
        assert!(self.sorted, "eq_range requires a sorted column");
        if let Some(runs) = &self.runs {
            self.storage.touch_segment(self.segment);
            return runs.eq_range_sorted(value);
        }
        let data = self.read();
        let lo = data.partition_point(|&x| x < value);
        let hi = data.partition_point(|&x| x <= value);
        lo..hi
    }
}

/// The storage layout decisions for a column's data: on-disk bytes and,
/// when the RLE layout is the stored one, the materialized run headers.
///
/// RLE stores `(value, run_length)` pairs, but falls back to the plain
/// layout when that would not pay off: the data is compressed only when
/// `run_count * 16 < plain_bytes` (a sorted but near-distinct column
/// stays plain). Run headers are materialized only when the RLE layout is
/// actually stored (a near-distinct column would pay up to 2x heap for
/// headers that search no faster than the values), and only while u32 row
/// offsets suffice (they cover the full Barton scale).
fn plan_layout(data: &[u64], sorted: bool, rle: bool) -> (u64, Option<Arc<RunCol>>) {
    let plain_bytes = data.len() as u64 * 8;
    let run_count = if rle {
        debug_assert!(sorted, "RLE layout requires a sorted column");
        count_runs(data)
    } else {
        0
    };
    let compresses = rle && run_count * 16 < plain_bytes && data.len() <= u32::MAX as usize;
    let bytes = if compresses {
        run_count * 16
    } else {
        plain_bytes
    };
    let runs = compresses.then(|| Arc::new(RunCol::from_flat(data)));
    (bytes, runs)
}

/// Number of equal-value runs in a slice.
fn count_runs(data: &[u64]) -> u64 {
    if data.is_empty() {
        return 0;
    }
    1 + data.windows(2).filter(|w| w[0] != w[1]).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use swans_storage::{MachineProfile, PAGE_SIZE};

    fn mgr() -> StorageManager {
        StorageManager::new(MachineProfile::B)
    }

    #[test]
    #[cfg_attr(miri, ignore = "large input: minutes under the interpreter")]
    fn read_touches_whole_segment_once() {
        let m = mgr();
        let c = Column::new(&m, "c", (0..10_000).collect(), true, false);
        m.reset_stats();
        let _ = c.read();
        let cold = m.stats().bytes_read;
        assert_eq!(cold, c.disk_bytes());
        let _ = c.read();
        assert_eq!(m.stats().bytes_read, cold, "second read is free (hot)");
    }

    #[test]
    fn eq_range_matches_linear_scan() {
        let m = mgr();
        let data = vec![1, 1, 2, 2, 2, 5, 7, 7];
        let c = Column::new(&m, "c", data.clone(), true, false);
        for v in 0..9 {
            let r = c.eq_range(v);
            let want: Vec<usize> = data
                .iter()
                .enumerate()
                .filter(|&(_, &x)| x == v)
                .map(|(i, _)| i)
                .collect();
            if want.is_empty() {
                assert!(r.is_empty(), "value {v}");
            } else {
                assert_eq!(r, want[0]..want[want.len() - 1] + 1, "value {v}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "requires a sorted column")]
    fn eq_range_panics_on_unsorted() {
        let m = mgr();
        let c = Column::new(&m, "c", vec![3, 1, 2], false, false);
        let _ = c.eq_range(1);
    }

    #[test]
    #[cfg_attr(miri, ignore = "large input: minutes under the interpreter")]
    fn rle_never_inflates_distinct_columns() {
        let m = mgr();
        let data: Vec<u64> = (0..100_000).collect(); // all runs length 1
        let plain = Column::new(&m, "p", data.clone(), true, false);
        let rle = Column::new(&m, "r", data, true, true);
        assert_eq!(rle.disk_bytes(), plain.disk_bytes());
        // RLE does not pay here, so no run headers are materialized either
        // (they would double the heap for no search advantage).
        assert!(!rle.has_runs());
        assert!(rle.read_runs().is_none());
    }

    #[test]
    #[cfg_attr(miri, ignore = "large input: minutes under the interpreter")]
    fn rle_compression_shrinks_low_cardinality_sorted_column() {
        let m = mgr();
        // 100k values, 4 runs.
        let mut data = vec![0u64; 25_000];
        data.extend(vec![1u64; 25_000]);
        data.extend(vec![2u64; 25_000]);
        data.extend(vec![3u64; 25_000]);
        let plain = Column::new(&m, "p", data.clone(), true, false);
        let rle = Column::new(&m, "r", data, true, true);
        assert_eq!(rle.disk_bytes(), PAGE_SIZE as u64, "4 runs fit one page");
        assert_eq!(rle.run_count(), 4);
        assert!(plain.disk_bytes() > 90 * PAGE_SIZE as u64);
    }

    /// An RLE column answers equality ranges from its run headers,
    /// identically to the plain binary search.
    #[test]
    fn rle_eq_range_matches_plain_eq_range() {
        let m = mgr();
        let data = vec![1, 1, 1, 2, 2, 2, 5, 7, 7];
        let plain = Column::new(&m, "p", data.clone(), true, false);
        let rle = Column::new(&m, "r", data, true, true);
        assert!(rle.has_runs());
        assert!(!plain.has_runs());
        for v in 0..9 {
            assert_eq!(rle.eq_range(v), plain.eq_range(v), "value {v}");
        }
        // Empty column.
        let empty = Column::new(&m, "e", vec![], true, true);
        assert_eq!(empty.eq_range(3), 0..0);
    }

    #[test]
    #[cfg_attr(miri, ignore = "large input: minutes under the interpreter")]
    fn rle_eq_range_charges_the_compressed_segment() {
        let m = mgr();
        // 100k rows, 4 runs: the RLE segment is one page.
        let mut data = vec![0u64; 25_000];
        data.extend(vec![1u64; 25_000]);
        data.extend(vec![2u64; 25_000]);
        data.extend(vec![3u64; 25_000]);
        let rle = Column::new(&m, "r", data, true, true);
        m.clear_pool();
        m.reset_stats();
        assert_eq!(rle.eq_range(2), 50_000..75_000);
        assert_eq!(m.stats().bytes_read, PAGE_SIZE as u64);
    }

    /// Reading the run representation touches the compressed segment —
    /// not the (larger) plain footprint — and round-trips the data.
    #[test]
    fn read_runs_charges_compressed_bytes_only() {
        let m = mgr();
        let mut data = vec![7u64; 50_000];
        data.extend(vec![9u64; 50_000]);
        let rle = Column::new(&m, "r", data.clone(), true, true);
        m.clear_pool();
        m.reset_stats();
        let runs = rle.read_runs().expect("stored as runs");
        assert_eq!(m.stats().bytes_read, rle.disk_bytes());
        assert_eq!(rle.disk_bytes(), PAGE_SIZE as u64, "2 runs, one page");
        assert_eq!(runs.expand(), data);
    }

    /// A rewrite re-takes the RLE decision from the new data under the
    /// column's own policy: compression appears when the merged data
    /// compresses and disappears when it no longer pays — never silently
    /// kept stale.
    #[test]
    fn rewrite_resizes_accounts_and_retakes_layout_decisions() {
        let m = mgr();
        // RLE considered, but the initial near-distinct data stays plain.
        let mut c = Column::new(&m, "c", (0..10_000).collect(), true, true);
        assert!(!c.has_runs());
        let old_bytes = c.disk_bytes();
        m.reset_stats();
        // Rewrite with low-cardinality sorted data: shrinks and compresses.
        let mut data = vec![1u64; 5_000];
        data.extend(vec![2u64; 5_000]);
        c.rewrite(data, true);
        assert!(c.has_runs());
        assert!(c.disk_bytes() < old_bytes);
        let s = m.stats();
        assert_eq!(s.bytes_written, c.disk_bytes(), "whole segment rewritten");
        assert_eq!(c.eq_range(2), 5_000..10_000);
        // The rewritten pages are resident: reading is free.
        let before = m.stats().bytes_read;
        let _ = c.read();
        assert_eq!(m.stats().bytes_read, before);
        // Rewrite back to near-distinct data: compression is dropped and
        // the footprint returns to the plain layout.
        c.rewrite((0..10_000).collect(), true);
        assert!(!c.has_runs());
        assert_eq!(c.disk_bytes(), old_bytes);
    }

    #[test]
    fn count_runs_counts_transitions() {
        assert_eq!(count_runs(&[]), 0);
        assert_eq!(count_runs(&[5]), 1);
        assert_eq!(count_runs(&[5, 5, 5]), 1);
        assert_eq!(count_runs(&[1, 1, 2, 3, 3]), 3);
    }
}
