//! The [`StorageManager`]: segments, page touches, cold/hot control.
//!
//! Engines never issue raw disk reads. They *touch* pages of named
//! segments; the manager consults the buffer pool and charges the simulated
//! disk only for non-resident pages, batching consecutive misses into
//! sequential runs.

use std::sync::{Arc, Mutex, MutexGuard};

use crate::disk::SimDisk;
use crate::io::{AtomicIoStats, IoStats, IoTracePoint};
use crate::machine::MachineProfile;
use crate::pool::BufferPool;
use crate::{pages_for, PAGE_SIZE};

/// Identifies one on-disk segment (a table, a column, an index, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegmentId(pub u32);

#[derive(Debug)]
struct SegmentMeta {
    name: String,
    pages: u32,
}

#[derive(Debug)]
struct Inner {
    disk: SimDisk,
    pool: BufferPool,
    segments: Vec<SegmentMeta>,
    /// Real-time I/O factor: every touch/write sleeps `charged io_seconds
    /// × this factor` of *wall-clock* time after releasing the lock.
    /// 0 (the default) keeps I/O purely accounted.
    realtime_scale: f64,
}

impl Inner {
    /// Simulated I/O seconds charged so far — sampled before and after an
    /// operation *under the lock*, so the delta is exactly that
    /// operation's own charge even with concurrent callers.
    fn charged_io_seconds(&self) -> f64 {
        if self.realtime_scale > 0.0 {
            self.disk.stats().io_seconds
        } else {
            0.0
        }
    }

    /// Wall-clock seconds the caller owes for the charge since `before`
    /// (0 when real-time simulation is off).
    fn realtime_wait(&self, before: f64) -> f64 {
        if self.realtime_scale > 0.0 {
            (self.disk.stats().io_seconds - before) * self.realtime_scale
        } else {
            0.0
        }
    }
}

/// Sleeps the real-time I/O debt — outside the manager lock, so waiting
/// threads never block each other's accounting (concurrent requests
/// overlap their waits, exactly as they would on real hardware).
fn realtime_sleep(seconds: f64) {
    if seconds > 0.0 {
        std::thread::sleep(std::time::Duration::from_secs_f64(seconds));
    }
}

/// Shared storage service: one per loaded store instance.
///
/// Cloning the handle (`Arc`) shares the same disk, pool and segments, so a
/// row table and its indices account against one I/O budget.
#[derive(Debug, Clone)]
pub struct StorageManager {
    inner: Arc<Mutex<Inner>>,
    /// The disk's atomic accounting counters, held outside the lock:
    /// [`StorageManager::stats`] snapshots (and
    /// [`StorageManager::reset_stats`] zeroes) without contending with
    /// workers that are touching pages — truthful accounting under
    /// intra-query parallelism.
    stats: Arc<AtomicIoStats>,
}

impl StorageManager {
    /// Locks the shared state. Poisoning is recovered: the inner state is
    /// plain accounting data that stays consistent even if a panic unwound
    /// through a lock holder.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Creates a manager with the given machine profile and an unbounded
    /// buffer pool.
    pub fn new(profile: MachineProfile) -> Self {
        Self::with_pool(profile, usize::MAX)
    }

    /// Creates a manager whose pool holds at most `pool_pages` pages.
    pub fn with_pool(profile: MachineProfile, pool_pages: usize) -> Self {
        let disk = SimDisk::new(profile);
        let stats = disk.stats_handle();
        Self {
            inner: Arc::new(Mutex::new(Inner {
                disk,
                pool: BufferPool::new(pool_pages),
                segments: Vec::new(),
                realtime_scale: 0.0,
            })),
            stats,
        }
    }

    /// The machine profile in effect.
    pub fn profile(&self) -> MachineProfile {
        self.lock().disk.profile()
    }

    /// Registers a segment big enough for `bytes` bytes and returns its id.
    pub fn create_segment(&self, name: impl Into<String>, bytes: u64) -> SegmentId {
        let mut inner = self.lock();
        let id = SegmentId(inner.segments.len() as u32);
        inner.segments.push(SegmentMeta {
            name: name.into(),
            pages: pages_for(bytes),
        });
        id
    }

    /// Number of pages in `seg`.
    pub fn segment_pages(&self, seg: SegmentId) -> u32 {
        self.lock().segments[seg.0 as usize].pages
    }

    /// Name of `seg` (for diagnostics).
    pub fn segment_name(&self, seg: SegmentId) -> String {
        self.lock().segments[seg.0 as usize].name.clone()
    }

    /// Total registered pages across all segments.
    pub fn total_pages(&self) -> u64 {
        self.lock().segments.iter().map(|s| s.pages as u64).sum()
    }

    /// Total registered bytes across all segments (on-disk footprint).
    pub fn total_bytes(&self) -> u64 {
        self.total_pages() * PAGE_SIZE as u64
    }

    /// Switches *real-time I/O simulation* on (`scale > 0`) or off (`0`,
    /// the default): every touch or write that charges simulated I/O wait
    /// additionally sleeps `charged io_seconds × scale` of wall-clock time
    /// on the calling thread, **after** releasing the manager lock.
    ///
    /// Accounting is unchanged — [`StorageManager::stats`] reports the
    /// same simulated seconds either way. The mode exists for *serving*
    /// benchmarks: a thread answering a query over non-resident data
    /// genuinely blocks (as it would on a real disk), so concurrent
    /// requests overlap their I/O waits and throughput scales with client
    /// count even on a single core — the axis `bench_serve` measures.
    /// `scale` compresses wall time (e.g. `0.1` = one simulated second
    /// sleeps 100 ms) so experiments finish quickly.
    pub fn set_realtime_io(&self, scale: f64) {
        self.lock().realtime_scale = scale.max(0.0);
    }

    /// The current real-time I/O factor (0 = off).
    pub fn realtime_io(&self) -> f64 {
        self.lock().realtime_scale
    }

    /// Touches a single page (a point access, e.g. a secondary-index probe
    /// or a B+tree node visit).
    pub fn touch_page(&self, seg: SegmentId, page: u32) {
        let wait = {
            let mut inner = self.lock();
            debug_assert!(page < inner.segments[seg.0 as usize].pages);
            let before = inner.charged_io_seconds();
            if !inner.pool.access(seg, page) {
                inner.disk.read_run(seg, page, 1);
            }
            inner.realtime_wait(before)
        };
        realtime_sleep(wait);
    }

    /// Touches `count` pages starting at `first` as one scan. Consecutive
    /// non-resident pages are fetched in sequential runs; resident pages
    /// are skipped (and refreshed in the pool).
    pub fn touch_range(&self, seg: SegmentId, first: u32, count: u32) {
        let wait = {
            let mut inner = self.lock();
            debug_assert!(
                first + count <= inner.segments[seg.0 as usize].pages,
                "range beyond segment {:?}: {first}+{count} > {}",
                seg,
                inner.segments[seg.0 as usize].pages
            );
            let before = inner.charged_io_seconds();
            let mut run_start = None;
            for page in first..first + count {
                let hit = inner.pool.access(seg, page);
                match (hit, run_start) {
                    (true, Some(start)) => {
                        inner.disk.read_run(seg, start, page - start);
                        run_start = None;
                    }
                    (false, None) => run_start = Some(page),
                    _ => {}
                }
            }
            if let Some(start) = run_start {
                inner.disk.read_run(seg, start, first + count - start);
            }
            inner.realtime_wait(before)
        };
        realtime_sleep(wait);
    }

    /// Touches the whole segment (the column-store "read the column on
    /// first use" behaviour).
    pub fn touch_segment(&self, seg: SegmentId) {
        let pages = self.segment_pages(seg);
        self.touch_range(seg, 0, pages);
    }

    /// Writes `count` pages starting at `first` as one run, charging
    /// write bytes and wait time. Written pages become pool-resident
    /// (they are the freshest copy).
    pub fn write_range(&self, seg: SegmentId, first: u32, count: u32) {
        let wait = {
            let mut inner = self.lock();
            debug_assert!(
                first + count <= inner.segments[seg.0 as usize].pages,
                "write beyond segment {:?}: {first}+{count} > {}",
                seg,
                inner.segments[seg.0 as usize].pages
            );
            let before = inner.charged_io_seconds();
            inner.disk.write_run(seg, first, count);
            for page in first..first + count {
                inner.pool.install(seg, page);
            }
            inner.realtime_wait(before)
        };
        realtime_sleep(wait);
    }

    /// Writes a single page (a point write, e.g. one B+tree leaf update).
    pub fn write_page(&self, seg: SegmentId, page: u32) {
        self.write_range(seg, page, 1);
    }

    /// Rewrites the whole segment (a merge flushing a rebuilt table).
    pub fn write_segment(&self, seg: SegmentId) {
        let pages = self.segment_pages(seg);
        self.write_range(seg, 0, pages);
    }

    /// Resizes `seg` to hold `bytes` bytes. Every cached page of the
    /// segment is evicted: after a rewrite the old page images are stale
    /// regardless of whether the segment grew or shrank.
    pub fn resize_segment(&self, seg: SegmentId, bytes: u64) {
        let mut inner = self.lock();
        inner.segments[seg.0 as usize].pages = pages_for(bytes);
        inner.pool.evict_segment(seg);
    }

    /// Empties the buffer pool: the next touches will be cold.
    pub fn clear_pool(&self) {
        self.lock().pool.clear();
    }

    /// Current cumulative I/O statistics (lock-free: reads the disk's
    /// atomic counters directly).
    pub fn stats(&self) -> IoStats {
        self.stats.snapshot()
    }

    /// Zeroes the I/O statistics (lock-free).
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Shared handle to the live accounting sink, for co-located
    /// accounting by components outside the simulated disk — the
    /// durability layer records its real fsyncs here so one snapshot
    /// shows simulated read/write traffic *and* durable-sync cost.
    pub fn stats_handle(&self) -> Arc<AtomicIoStats> {
        Arc::clone(&self.stats)
    }

    /// Number of pages currently resident in the pool.
    pub fn resident_pages(&self) -> usize {
        self.lock().pool.resident_pages()
    }

    /// Starts recording the I/O read history (Figure 5).
    pub fn begin_trace(&self) {
        self.lock().disk.begin_trace();
    }

    /// Stops recording and returns the history.
    pub fn take_trace(&self) -> Vec<IoTracePoint> {
        self.lock().disk.take_trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> StorageManager {
        StorageManager::new(MachineProfile::B)
    }

    #[test]
    fn cold_then_hot_range() {
        let m = mgr();
        let seg = m.create_segment("col", 10 * PAGE_SIZE as u64);
        m.touch_range(seg, 0, 10);
        let cold = m.stats();
        assert_eq!(cold.bytes_read, 10 * PAGE_SIZE as u64);
        m.touch_range(seg, 0, 10);
        let hot = m.stats();
        assert_eq!(hot.bytes_read, cold.bytes_read, "warm pages cost nothing");
    }

    /// Real-time mode sleeps at least the scaled charge on cold touches
    /// and charges identical simulated seconds either way.
    #[test]
    #[cfg_attr(miri, ignore = "sleeps wall-clock time")]
    fn realtime_io_sleeps_the_charged_wait() {
        let m = mgr();
        let seg = m.create_segment("col", 64 * PAGE_SIZE as u64);
        m.touch_range(seg, 0, 64); // accounted only: no realtime factor yet
        let accounted = m.stats().io_seconds;
        assert!(accounted > 0.0);

        m.clear_pool();
        m.reset_stats();
        m.set_realtime_io(0.5);
        assert_eq!(m.realtime_io(), 0.5);
        let start = std::time::Instant::now();
        m.touch_range(seg, 0, 64);
        let slept = start.elapsed().as_secs_f64();
        let charged = m.stats().io_seconds;
        assert_eq!(charged, accounted, "accounting is unchanged by the mode");
        assert!(
            slept >= charged * 0.5,
            "cold touch must sleep the scaled charge: slept {slept}s for {charged}s charged"
        );

        // A hot touch charges nothing, so it owes no sleep.
        m.reset_stats();
        m.touch_range(seg, 0, 64);
        assert_eq!(m.stats().io_seconds, 0.0);
        m.set_realtime_io(0.0);
    }

    #[test]
    fn clear_pool_makes_next_touch_cold_again() {
        let m = mgr();
        let seg = m.create_segment("col", 4 * PAGE_SIZE as u64);
        m.touch_range(seg, 0, 4);
        m.clear_pool();
        m.touch_range(seg, 0, 4);
        assert_eq!(m.stats().bytes_read, 8 * PAGE_SIZE as u64);
    }

    #[test]
    fn partial_residency_reads_only_gaps() {
        let m = mgr();
        let seg = m.create_segment("col", 6 * PAGE_SIZE as u64);
        m.touch_page(seg, 2);
        m.touch_page(seg, 4);
        let before = m.stats();
        m.touch_range(seg, 0, 6); // pages 0,1,3,5 are cold
        let delta = m.stats().since(&before);
        assert_eq!(delta.bytes_read, 4 * PAGE_SIZE as u64);
        // Runs: [0,1], [3], [5] -> 3 read calls.
        assert_eq!(delta.read_calls, 3);
    }

    #[test]
    fn touch_segment_covers_all_pages() {
        let m = mgr();
        let seg = m.create_segment("col", 3 * PAGE_SIZE as u64 + 17);
        m.touch_segment(seg);
        assert_eq!(m.stats().bytes_read, 4 * PAGE_SIZE as u64);
        assert_eq!(m.resident_pages(), 4);
    }

    #[test]
    fn small_pool_forces_rereads() {
        let m = StorageManager::with_pool(MachineProfile::A, 4);
        let seg = m.create_segment("big", 16 * PAGE_SIZE as u64);
        m.touch_range(seg, 0, 16);
        let first = m.stats();
        m.touch_range(seg, 0, 16);
        let second = m.stats().since(&first);
        assert_eq!(
            second.bytes_read,
            16 * PAGE_SIZE as u64,
            "a 4-page pool cannot retain a 16-page scan"
        );
    }

    #[test]
    fn writes_warm_the_pool_and_account_bytes() {
        let m = mgr();
        let seg = m.create_segment("col", 4 * PAGE_SIZE as u64);
        m.write_segment(seg);
        let s = m.stats();
        assert_eq!(s.bytes_written, 4 * PAGE_SIZE as u64);
        assert_eq!(s.bytes_read, 0);
        // The written pages are the freshest copy: reading them is free.
        m.touch_range(seg, 0, 4);
        assert_eq!(m.stats().bytes_read, 0);
    }

    #[test]
    fn resize_evicts_stale_pages() {
        let m = mgr();
        let seg = m.create_segment("col", 4 * PAGE_SIZE as u64);
        m.touch_range(seg, 0, 4);
        assert_eq!(m.resident_pages(), 4);
        m.resize_segment(seg, 2 * PAGE_SIZE as u64);
        assert_eq!(m.segment_pages(seg), 2);
        assert_eq!(m.resident_pages(), 0, "stale images must leave the pool");
        m.touch_range(seg, 0, 2);
        assert_eq!(m.stats().bytes_read, 6 * PAGE_SIZE as u64);
    }

    #[test]
    fn shared_handle_shares_accounting() {
        let m = mgr();
        let m2 = m.clone();
        let seg = m.create_segment("t", PAGE_SIZE as u64);
        m2.touch_page(seg, 0);
        assert_eq!(m.stats().bytes_read, PAGE_SIZE as u64);
    }

    #[test]
    fn total_bytes_sums_segments() {
        let m = mgr();
        m.create_segment("a", 100);
        m.create_segment("b", PAGE_SIZE as u64 + 1);
        assert_eq!(m.total_bytes(), 3 * PAGE_SIZE as u64);
    }
}
