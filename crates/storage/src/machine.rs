//! Machine I/O profiles (the paper's Table 3).
//!
//! The paper benchmarks on two CWI machines (A, B) and compares against the
//! machine used by Abadi et al. (C). What matters for the simulation is the
//! sustained sequential read bandwidth and a per-random-access seek penalty;
//! the CPU fields are retained for the Table 3 reproduction printout.

/// I/O and hardware profile of one benchmark machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineProfile {
    /// Short name: "A", "B", or "C".
    pub name: &'static str,
    /// Number of CPUs.
    pub num_cpus: u32,
    /// CPU description as printed in Table 3.
    pub cpu: &'static str,
    /// Clock speed in GHz.
    pub cpu_ghz: f64,
    /// L2 cache size in KB.
    pub cache_kb: u32,
    /// RAM size in GB.
    pub ram_gb: u32,
    /// Sustained sequential read bandwidth in MB/s (decimal megabytes).
    pub io_read_mb_s: f64,
    /// Average random-access (seek + rotational) penalty in milliseconds.
    pub seek_ms: f64,
    /// Number of RAID disks.
    pub raid_disks: u32,
    /// RAID level.
    pub raid_level: u32,
    /// Operating system string.
    pub os: &'static str,
}

impl MachineProfile {
    /// Machine A: 1× AMD Athlon 64 Dual Core 2 GHz, 2 GB RAM,
    /// 2-disk RAID-0 reading 100–110 MB/s.
    pub const A: MachineProfile = MachineProfile {
        name: "A",
        num_cpus: 1,
        cpu: "AMD Athlon 64 Dual Core",
        cpu_ghz: 2.0,
        cache_kb: 512,
        ram_gb: 2,
        io_read_mb_s: 105.0,
        seek_ms: 8.0,
        raid_disks: 2,
        raid_level: 0,
        os: "Fedora 8 (Linux 2.6.22)",
    };

    /// Machine B: 2× Intel Xeon 3 GHz, 4 GB RAM, 10-disk RAID-5 reading
    /// 380–390 MB/s.
    pub const B: MachineProfile = MachineProfile {
        name: "B",
        num_cpus: 2,
        cpu: "Intel Xeon",
        cpu_ghz: 3.0,
        cache_kb: 1024,
        ram_gb: 4,
        io_read_mb_s: 385.0,
        seek_ms: 6.0,
        raid_disks: 10,
        raid_level: 5,
        os: "Fedora Core 6 (Linux 2.6.23)",
    };

    /// Machine C: the Abadi et al. machine — 1× Pentium IV HT 3 GHz,
    /// 2 GB RAM, 3-disk RAID-0 reading 150–180 MB/s.
    pub const C: MachineProfile = MachineProfile {
        name: "C",
        num_cpus: 1,
        cpu: "Intel Pentium IV Hyperthreaded",
        cpu_ghz: 3.0,
        cache_kb: 1024,
        ram_gb: 2,
        io_read_mb_s: 165.0,
        seek_ms: 9.0,
        raid_disks: 3,
        raid_level: 0,
        os: "RedHat Linux",
    };

    /// All Table 3 machines.
    pub const ALL: [MachineProfile; 3] = [MachineProfile::A, MachineProfile::B, MachineProfile::C];

    /// Simulated seconds to sequentially transfer `bytes` bytes.
    #[inline]
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.io_read_mb_s * 1_000_000.0)
    }

    /// Simulated seconds for `seeks` random repositionings.
    #[inline]
    pub fn seek_seconds(&self, seeks: u64) -> f64 {
        seeks as f64 * self.seek_ms / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_b_reads_roughly_4x_faster_than_a() {
        let ratio = MachineProfile::B.io_read_mb_s / MachineProfile::A.io_read_mb_s;
        assert!(
            (3.5..4.2).contains(&ratio),
            "paper: B handles I/O ~4x faster"
        );
    }

    #[test]
    fn transfer_time_is_linear_in_bytes() {
        let m = MachineProfile::A;
        let t1 = m.transfer_seconds(105_000_000);
        assert!((t1 - 1.0).abs() < 1e-9, "105 MB at 105 MB/s is 1 s");
        assert!((m.transfer_seconds(210_000_000) - 2.0 * t1).abs() < 1e-9);
    }

    #[test]
    fn seeks_cost_milliseconds() {
        assert!((MachineProfile::A.seek_seconds(1000) - 8.0).abs() < 1e-9);
    }
}
