//! Snapshot persistence: the sorted read store, on disk, in its
//! RLE-compressed form.
//!
//! A snapshot is the durable twin of a fully merged database: the
//! dictionary plus the three columns of the SPO-sorted triple list, each
//! stored as `(value, run_length)` pairs — the same run-length headers
//! the column engine already computes, so the heavily repetitive s/p
//! columns cost almost nothing on disk. The format is engine-agnostic: a
//! directory snapshotted under one engine × layout reopens under any
//! other, because every engine bulk-loads from the same logical dataset.
//!
//! ## On-disk format
//!
//! ```text
//! "SWSN" [version: u32 LE] [last_seq: u64 LE]
//! [n_terms: u32 LE] ([term_len: u32 LE][utf8 bytes])*
//! [n_triples: u64 LE]
//! 3 × ( [n_runs: u64 LE] ([value: u64 LE][run_len: u64 LE])* )   -- s, p, o
//! [crc32 of everything above: u32 LE]
//! ```
//!
//! [`decode`] verifies the trailing CRC over the whole image *before*
//! interpreting a single field, so any corruption — header, dictionary,
//! runs — surfaces as one typed [`SnapshotError::Checksum`], never a
//! panic or a half-decoded store.
//!
//! ## Publication protocol
//!
//! [`write_snapshot`] writes to `snapshot.swans.tmp`, fsyncs, re-reads
//! and re-decodes the temp file (catching silent write corruption while
//! the old snapshot is still intact), then atomically renames it over
//! `snapshot.swans`. A crash anywhere before the rename leaves the
//! previous snapshot untouched; after the rename the new one is live and
//! the (now-redundant) WAL prefix is truncated by the caller.

use std::fmt;
use std::io;
use std::path::Path;
use std::sync::Arc;

use crate::crc::{crc32, Crc32};
use crate::fault::{self, DurableFile, FaultState};
use crate::io::AtomicIoStats;

/// File name of the live snapshot inside a durable database directory.
pub const SNAPSHOT_FILE: &str = "snapshot.swans";
/// Temp-file name a snapshot is staged under before its atomic rename.
pub const SNAPSHOT_TMP: &str = "snapshot.swans.tmp";

const MAGIC: &[u8; 4] = b"SWSN";
const VERSION: u32 = 1;

/// A decoded (or to-be-encoded) snapshot: the full logical state of the
/// database at `last_seq`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotData {
    /// Highest WAL sequence number whose effects this snapshot contains.
    /// Recovery replays only records with greater sequence numbers.
    pub last_seq: u64,
    /// Dictionary terms in id order (term `i` has id `i`).
    pub terms: Vec<String>,
    /// Number of triples (the decoded length of each column).
    pub n_triples: u64,
    /// Run-length-encoded s, p and o columns of the SPO-sorted triples.
    pub cols: [Vec<(u64, u64)>; 3],
}

/// Why a snapshot image failed to decode. Every variant is a clean,
/// typed rejection — corrupt input never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The image ends before a complete field.
    Truncated,
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// A format version this build does not understand.
    BadVersion(u32),
    /// The trailing CRC32 does not match the image.
    Checksum,
    /// Structurally invalid content (with a CRC that nonetheless
    /// matches — possible only for hand-crafted images).
    Malformed(String),
    /// The underlying file could not be read.
    Io(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::Checksum => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Malformed(m) => write!(f, "malformed snapshot: {m}"),
            SnapshotError::Io(m) => write!(f, "snapshot I/O error: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl SnapshotData {
    /// Builds a snapshot from SPO-sorted triple rows, run-length
    /// encoding each column.
    pub fn from_rows(last_seq: u64, terms: Vec<String>, rows: &[[u64; 3]]) -> Self {
        let col = |c: usize| {
            let mut runs: Vec<(u64, u64)> = Vec::new();
            for row in rows {
                match runs.last_mut() {
                    Some((v, n)) if *v == row[c] => *n += 1,
                    _ => runs.push((row[c], 1)),
                }
            }
            runs
        };
        SnapshotData {
            last_seq,
            terms,
            n_triples: rows.len() as u64,
            cols: [col(0), col(1), col(2)],
        }
    }

    /// Expands the three run-encoded columns back into triple rows.
    pub fn rows(&self) -> Vec<[u64; 3]> {
        let expand = |runs: &[(u64, u64)]| {
            let mut out = Vec::with_capacity(self.n_triples as usize);
            for &(v, n) in runs {
                out.extend(std::iter::repeat_n(v, n as usize));
            }
            out
        };
        let (s, p, o) = (
            expand(&self.cols[0]),
            expand(&self.cols[1]),
            expand(&self.cols[2]),
        );
        s.into_iter()
            .zip(p)
            .zip(o)
            .map(|((s, p), o)| [s, p, o])
            .collect()
    }

    /// Serializes the snapshot (including the trailing CRC).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.last_seq.to_le_bytes());
        out.extend_from_slice(&(self.terms.len() as u32).to_le_bytes());
        for t in &self.terms {
            out.extend_from_slice(&(t.len() as u32).to_le_bytes());
            out.extend_from_slice(t.as_bytes());
        }
        out.extend_from_slice(&self.n_triples.to_le_bytes());
        for col in &self.cols {
            out.extend_from_slice(&(col.len() as u64).to_le_bytes());
            for &(v, n) in col {
                out.extend_from_slice(&v.to_le_bytes());
                out.extend_from_slice(&n.to_le_bytes());
            }
        }
        let mut crc = Crc32::new();
        crc.update(&out);
        out.extend_from_slice(&crc.finish().to_le_bytes());
        out
    }
}

/// A bounds-checked little-endian reader over a snapshot body.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.at.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }
}

/// Decodes a snapshot image, verifying the trailing checksum over the
/// entire body **first**. Total: any input yields a [`SnapshotData`] or
/// a typed [`SnapshotError`], never a panic.
pub fn decode(bytes: &[u8]) -> Result<SnapshotData, SnapshotError> {
    if bytes.len() < 4 {
        return Err(SnapshotError::Truncated);
    }
    let (body, tail) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(tail.try_into().unwrap());
    if crc32(body) != stored {
        return Err(SnapshotError::Checksum);
    }
    let mut c = Cursor { bytes: body, at: 0 };
    if c.take(4)? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = c.u32()?;
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let last_seq = c.u64()?;
    let n_terms = c.u32()? as usize;
    // Guard counts against the remaining bytes before allocating, so a
    // hand-crafted image cannot request an absurd reservation.
    if n_terms.checked_mul(4).is_none_or(|b| b > c.remaining()) {
        return Err(SnapshotError::Truncated);
    }
    let mut terms = Vec::with_capacity(n_terms);
    for _ in 0..n_terms {
        let len = c.u32()? as usize;
        let raw = c.take(len)?;
        let term = std::str::from_utf8(raw)
            .map_err(|_| SnapshotError::Malformed("term is not UTF-8".into()))?;
        terms.push(term.to_string());
    }
    let n_triples = c.u64()?;
    let mut cols: [Vec<(u64, u64)>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for col in &mut cols {
        let n_runs = c.u64()? as usize;
        if n_runs.checked_mul(16).is_none_or(|b| b > c.remaining()) {
            return Err(SnapshotError::Truncated);
        }
        col.reserve(n_runs);
        let mut total: u64 = 0;
        for _ in 0..n_runs {
            let v = c.u64()?;
            let n = c.u64()?;
            if n == 0 {
                return Err(SnapshotError::Malformed("zero-length run".into()));
            }
            total = total
                .checked_add(n)
                .ok_or_else(|| SnapshotError::Malformed("run lengths overflow".into()))?;
            col.push((v, n));
        }
        if total != n_triples {
            return Err(SnapshotError::Malformed(
                "column run lengths do not sum to the triple count".into(),
            ));
        }
    }
    if c.remaining() != 0 {
        return Err(SnapshotError::Malformed("trailing bytes".into()));
    }
    Ok(SnapshotData {
        last_seq,
        terms,
        n_triples,
        cols,
    })
}

/// Publishes `snap` into `dir` via the temp-file + verify + atomic-rename
/// protocol described in the module docs. Returns the snapshot's encoded
/// size in bytes. On any error — injected or real — the previously
/// published snapshot (if any) is untouched.
pub fn write_snapshot(
    dir: &Path,
    snap: &SnapshotData,
    faults: &Arc<FaultState>,
    stats: Option<Arc<AtomicIoStats>>,
) -> io::Result<u64> {
    let bytes = snap.encode();
    let tmp = dir.join(SNAPSHOT_TMP);
    let live = dir.join(SNAPSHOT_FILE);
    {
        let mut f = DurableFile::create(&tmp, faults.clone())?;
        if let Some(stats) = stats {
            f.set_stats(stats);
        }
        f.write_all(&bytes)?;
        f.sync()?;
    }
    // Read the temp file back and fully re-decode it: a silently
    // corrupted write must be caught *before* the rename makes it live.
    let back = std::fs::read(&tmp)?;
    if back != bytes {
        return Err(io::Error::other(
            "snapshot verification failed: written bytes differ",
        ));
    }
    decode(&back).map_err(|e| io::Error::other(format!("snapshot verification failed: {e}")))?;
    fault::rename(faults, &tmp, &live)?;
    // Make the rename itself durable where the platform supports
    // fsync-on-directory; best-effort by design (the rename is already
    // atomic, this only narrows the window in which it could be lost).
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(bytes.len() as u64)
}

/// Loads the published snapshot from `dir`. `Ok(None)` if none has ever
/// been published; a typed error if one exists but fails verification.
pub fn read_snapshot(dir: &Path) -> Result<Option<(SnapshotData, u64)>, SnapshotError> {
    let path = dir.join(SNAPSHOT_FILE);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(SnapshotError::Io(e.to_string())),
    };
    let snap = decode(&bytes)?;
    Ok(Some((snap, bytes.len() as u64)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "swans-snap-{}-{}-{}",
            tag,
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    fn random_snapshot(rng: &mut Rng) -> SnapshotData {
        let n_terms = (rng.next() % 20) as usize + 1;
        let terms: Vec<String> = (0..n_terms).map(|i| format!("<term/{i}>")).collect();
        let n_rows = (rng.next() % 40) as usize;
        let mut rows: Vec<[u64; 3]> = (0..n_rows)
            .map(|_| {
                [
                    rng.next() % n_terms as u64,
                    rng.next() % 4, // few properties => real runs
                    rng.next() % n_terms as u64,
                ]
            })
            .collect();
        rows.sort_unstable();
        rows.dedup();
        SnapshotData::from_rows(rng.next() % 100, terms, &rows)
    }

    #[test]
    fn round_trip_random_snapshots() {
        let mut rng = Rng(0x5EED_0101);
        for _ in 0..40 {
            let snap = random_snapshot(&mut rng);
            let decoded = decode(&snap.encode()).expect("round trip");
            assert_eq!(decoded, snap);
            // And the row expansion inverts from_rows.
            let rows = decoded.rows();
            assert_eq!(rows.len() as u64, snap.n_triples);
            assert_eq!(
                SnapshotData::from_rows(snap.last_seq, snap.terms.clone(), &rows),
                snap
            );
        }
    }

    /// Every single-bit corruption of an encoded snapshot is rejected by
    /// the up-front checksum — the typed error, never a panic, and never
    /// a successfully decoded mutant.
    #[test]
    fn single_bit_corruption_is_always_rejected() {
        let mut rng = Rng(0xBAD_5EED);
        let snap = random_snapshot(&mut rng);
        let bytes = snap.encode();
        for bit in 0..bytes.len() * 8 {
            let mut copy = bytes.clone();
            copy[bit / 8] ^= 1 << (bit % 8);
            match decode(&copy) {
                Err(SnapshotError::Checksum) => {}
                other => panic!("flip of bit {bit}: expected checksum error, got {other:?}"),
            }
        }
    }

    /// Truncation at every length is a typed rejection.
    #[test]
    fn truncation_is_always_rejected() {
        let mut rng = Rng(0x7472_756E);
        let snap = random_snapshot(&mut rng);
        let bytes = snap.encode();
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    /// Structural validation still runs behind a valid CRC: re-checksummed
    /// hand-crafted mutants get Malformed/BadMagic/BadVersion, not a panic.
    #[test]
    fn crc_valid_but_malformed_images_are_rejected() {
        let reseal = |mut body: Vec<u8>| {
            let crc = crc32(&body);
            body.extend_from_slice(&crc.to_le_bytes());
            body
        };
        let snap = SnapshotData::from_rows(7, vec!["a".into()], &[[0, 0, 0]]);
        let mut encoded = snap.encode();
        encoded.truncate(encoded.len() - 4); // drop CRC => raw body

        let mut bad_magic = encoded.clone();
        bad_magic[0] = b'X';
        assert_eq!(decode(&reseal(bad_magic)), Err(SnapshotError::BadMagic));

        let mut bad_version = encoded.clone();
        bad_version[4] = 99;
        assert_eq!(
            decode(&reseal(bad_version)),
            Err(SnapshotError::BadVersion(99))
        );

        let mut trailing = encoded.clone();
        trailing.push(0);
        assert!(matches!(
            decode(&reseal(trailing)),
            Err(SnapshotError::Malformed(_))
        ));

        // A run-length sum that disagrees with n_triples: bump n_triples.
        let mut bad_sum = encoded.clone();
        let n_triples_at = 4 + 4 + 8 + 4 + 4 + 1; // magic, ver, seq, n_terms, len, "a"
        bad_sum[n_triples_at] = 2; // n_triples: 1 -> 2
        assert!(matches!(
            decode(&reseal(bad_sum)),
            Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    #[cfg_attr(miri, ignore)] // real file I/O
    fn publish_and_read_back() {
        let dir = scratch("publish");
        assert_eq!(read_snapshot(&dir), Ok(None));
        let snap = SnapshotData::from_rows(
            3,
            vec!["s".into(), "p".into(), "o".into()],
            &[[0, 1, 2], [0, 1, 0]],
        );
        let bytes = write_snapshot(&dir, &snap, &FaultState::new(), None).unwrap();
        let (back, read_bytes) = read_snapshot(&dir).unwrap().expect("published");
        assert_eq!(back, snap);
        assert_eq!(bytes, read_bytes);
        assert!(!dir.join(SNAPSHOT_TMP).exists(), "temp file cleaned up");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    #[cfg_attr(miri, ignore)]
    fn a_failed_publication_preserves_the_old_snapshot() {
        use crate::fault::{FaultKind, FaultPolicy};
        let dir = scratch("preserve");
        let old = SnapshotData::from_rows(1, vec!["old".into()], &[[0, 0, 0]]);
        write_snapshot(&dir, &old, &FaultState::new(), None).unwrap();
        let new = SnapshotData::from_rows(2, vec!["old".into(), "new".into()], &[[1, 1, 1]]);
        // Sweep a crash over every faultable op of the publication
        // (tmp write, tmp sync, rename): the old snapshot must survive.
        for at_op in 0..3 {
            let faults = FaultState::new();
            faults.arm(FaultPolicy {
                at_op,
                kind: FaultKind::CrashBefore,
            });
            assert!(
                write_snapshot(&dir, &new, &faults, None).is_err(),
                "op {at_op} did not fault"
            );
            let (back, _) = read_snapshot(&dir).unwrap().expect("still published");
            assert_eq!(back, old, "crash at op {at_op} damaged the live snapshot");
        }
        // Silent corruption of the tmp write is caught by the read-back
        // verification, again leaving the old snapshot live.
        let faults = FaultState::new();
        faults.arm(FaultPolicy {
            at_op: 0,
            kind: FaultKind::FlipBit { bit: 123 },
        });
        assert!(write_snapshot(&dir, &new, &faults, None).is_err());
        let (back, _) = read_snapshot(&dir).unwrap().expect("still published");
        assert_eq!(back, old);
        // And with no fault armed the new snapshot replaces the old.
        write_snapshot(&dir, &new, &FaultState::new(), None).unwrap();
        let (back, _) = read_snapshot(&dir).unwrap().unwrap();
        assert_eq!(back, new);
        let _ = std::fs::remove_dir_all(dir);
    }
}
