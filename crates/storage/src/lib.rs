//! # swans-storage
//!
//! The storage substrate shared by the row and column engines: a simulated
//! disk with per-machine I/O cost profiles, a page-granular LRU buffer pool,
//! and byte-accurate I/O accounting.
//!
//! ## Why a *simulated* disk
//!
//! The paper's experiments hinge on the difference between **cold** runs
//! (nothing cached — achieved there by rebooting or flushing the OS page
//! cache) and **hot** runs (everything relevant resident), and on the I/O
//! behaviour of the competing storage layouts (Tables 4–7, Figure 5). A
//! reproduction cannot reboot its host between queries, and wall-clock disk
//! timings would not be deterministic anyway. Instead, every byte an engine
//! pulls across the disk→memory boundary is accounted here and converted
//! into *simulated I/O wait seconds* using the bandwidth/seek parameters of
//! the paper's Table 3 machines. The benchmark runner then reports
//!
//! * **user time** — measured CPU time of the query operators, and
//! * **real time** — user time + simulated I/O wait,
//!
//! mirroring the paper's definitions in §2.3.
//!
//! A **cold run** empties the [`BufferPool`] first; a **hot run** leaves it
//! warm. The pool can also be capacity-limited to model C-Store's
//! restrictive buffering (§3: *"C-Store only exploits a small fraction of
//! the I/O bandwidth"* — data is read multiple times), which is how the
//! harness reproduces the re-read behaviour of Figure 5.
//!
//! The **write path** is accounted symmetrically: engines charge delta
//! applies, B+tree maintenance and merge rewrites through
//! [`StorageManager::write_range`] /
//! [`StorageManager::write_segment`], which land in
//! [`IoStats::bytes_written`] and the shared `io_seconds`; a rewritten
//! segment is resized ([`StorageManager::resize_segment`]), evicting its
//! stale cached pages, and freshly written pages enter the pool as the
//! newest copy.
//!
//! ## The durability layer (real files)
//!
//! Simulated bytes cannot survive a process restart, so durability is the
//! one part of the crate that does **real** file I/O: a checksummed
//! write-ahead log ([`wal`]), RLE-compressed snapshots published by
//! atomic rename ([`snapshot`]), an offline CRC32 ([`crc`]), and a
//! fault-injection wrapper around every durable write ([`fault`]) that
//! lets the crash-matrix test kill the modeled process at any write, tear
//! a record, flip a bit, or inject errors. Real fsync cost is accounted
//! in [`IoStats::syncs`] / [`IoStats::bytes_synced`], kept separate from
//! the simulated counters.

#![warn(missing_docs)]

pub mod crc;
pub mod disk;
pub mod fault;
pub mod io;
pub mod lru;
pub mod machine;
pub mod manager;
pub mod pool;
pub mod snapshot;
pub mod wal;

pub use crc::{crc32, Crc32};
pub use disk::SimDisk;
pub use fault::{DurableFile, FaultKind, FaultPolicy, FaultState};
pub use io::{AtomicIoStats, IoStats, IoTracePoint};
pub use machine::MachineProfile;
pub use manager::{SegmentId, StorageManager};
pub use pool::BufferPool;
pub use snapshot::{SnapshotData, SnapshotError, SNAPSHOT_FILE, SNAPSHOT_TMP};
pub use wal::{WalOptions, WalRecord, WalTail, WalWriter, WAL_FILE};

/// Page size in bytes. 8 KiB, a common DBMS default.
pub const PAGE_SIZE: usize = 8192;

/// Number of pages needed to hold `bytes` bytes.
#[inline]
pub fn pages_for(bytes: u64) -> u32 {
    bytes.div_ceil(PAGE_SIZE as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(pages_for(0), 0);
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(PAGE_SIZE as u64), 1);
        assert_eq!(pages_for(PAGE_SIZE as u64 + 1), 2);
    }
}
