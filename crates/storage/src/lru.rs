//! An O(1) LRU set over page keys, built on a slab-backed doubly linked
//! list. Used by the [`crate::BufferPool`] to decide evictions when the
//! pool is capacity-limited (the C-Store restricted-buffer simulation).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// Fx-style hasher, duplicated here to keep this crate dependency-free.
#[derive(Default)]
struct FxHasher(u64);

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0.rotate_left(5) ^ b as u64).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
        }
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

const NIL: u32 = u32::MAX;

#[derive(Clone, Copy)]
struct Node<K> {
    key: K,
    prev: u32,
    next: u32,
}

/// A fixed-policy LRU set: `touch` inserts or refreshes a key; when the set
/// is over capacity, the least-recently-used key is evicted and returned.
pub struct LruSet<K: Eq + Hash + Copy> {
    nodes: Vec<Node<K>>,
    free: Vec<u32>,
    index: HashMap<K, u32, BuildHasherDefault<FxHasher>>,
    head: u32, // most recently used
    tail: u32, // least recently used
    capacity: usize,
}

impl<K: Eq + Hash + Copy> std::fmt::Debug for LruSet<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LruSet(len={}, cap={})", self.len(), self.capacity)
    }
}

impl<K: Eq + Hash + Copy> LruSet<K> {
    /// Creates an LRU set holding at most `capacity` keys
    /// (`usize::MAX` for effectively unbounded).
    pub fn new(capacity: usize) -> Self {
        Self {
            nodes: Vec::new(),
            free: Vec::new(),
            index: HashMap::default(),
            head: NIL,
            tail: NIL,
            capacity: capacity.max(1),
        }
    }

    /// Number of resident keys.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no key is resident.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// True when `key` is resident (does not refresh recency).
    pub fn contains(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let n = &self.nodes[idx as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: u32) {
        self.nodes[idx as usize].prev = NIL;
        self.nodes[idx as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Marks `key` as most recently used, inserting it if absent. Returns
    /// the evicted key when the insertion pushed the set over capacity.
    pub fn touch(&mut self, key: K) -> Option<K> {
        if let Some(&idx) = self.index.get(&key) {
            if self.head != idx {
                self.unlink(idx);
                self.push_front(idx);
            }
            return None;
        }
        let idx = if let Some(i) = self.free.pop() {
            self.nodes[i as usize] = Node {
                key,
                prev: NIL,
                next: NIL,
            };
            i
        } else {
            self.nodes.push(Node {
                key,
                prev: NIL,
                next: NIL,
            });
            (self.nodes.len() - 1) as u32
        };
        self.index.insert(key, idx);
        self.push_front(idx);

        if self.index.len() > self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            let vkey = self.nodes[victim as usize].key;
            self.unlink(victim);
            self.index.remove(&vkey);
            self.free.push(victim);
            return Some(vkey);
        }
        None
    }

    /// Removes `key` if resident, returning whether it was.
    pub fn remove(&mut self, key: &K) -> bool {
        let Some(idx) = self.index.remove(key) else {
            return false;
        };
        self.unlink(idx);
        self.free.push(idx);
        true
    }

    /// Removes every key for which `pred` holds.
    pub fn retain(&mut self, mut pred: impl FnMut(&K) -> bool) {
        let doomed: Vec<K> = self.index.keys().copied().filter(|k| !pred(k)).collect();
        for k in doomed {
            self.remove(&k);
        }
    }

    /// Removes every key.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.index.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = LruSet::new(2);
        assert_eq!(lru.touch(1u64), None);
        assert_eq!(lru.touch(2), None);
        assert_eq!(lru.touch(3), Some(1)); // 1 is the oldest
        assert!(lru.contains(&2) && lru.contains(&3) && !lru.contains(&1));
    }

    #[test]
    fn touch_refreshes_recency() {
        let mut lru = LruSet::new(2);
        lru.touch(1u64);
        lru.touch(2);
        lru.touch(1); // refresh 1, so 2 becomes LRU
        assert_eq!(lru.touch(3), Some(2));
    }

    #[test]
    fn clear_resets() {
        let mut lru = LruSet::new(4);
        for k in 0..4u64 {
            lru.touch(k);
        }
        lru.clear();
        assert!(lru.is_empty());
        assert_eq!(lru.touch(9), None);
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn capacity_one_always_holds_last_key() {
        let mut lru = LruSet::new(1);
        assert_eq!(lru.touch(1u64), None);
        assert_eq!(lru.touch(2), Some(1));
        assert_eq!(lru.touch(3), Some(2));
        assert!(lru.contains(&3));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn slot_reuse_after_eviction() {
        let mut lru = LruSet::new(2);
        for k in 0..100u64 {
            lru.touch(k);
        }
        // Only 2 resident, the slab reuses freed slots.
        assert_eq!(lru.len(), 2);
        assert!(lru.nodes.len() <= 3);
    }
}

#[cfg(all(test, feature = "proptests"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::VecDeque;

    /// Reference model: a VecDeque ordered most-recent-first.
    fn model_touch(model: &mut VecDeque<u64>, cap: usize, key: u64) -> Option<u64> {
        if let Some(pos) = model.iter().position(|&k| k == key) {
            model.remove(pos);
            model.push_front(key);
            return None;
        }
        model.push_front(key);
        if model.len() > cap {
            model.pop_back()
        } else {
            None
        }
    }

    proptest! {
        #[test]
        fn matches_reference_model(
            cap in 1usize..8,
            keys in proptest::collection::vec(0u64..16, 0..200),
        ) {
            let mut lru = LruSet::new(cap);
            let mut model: VecDeque<u64> = VecDeque::new();
            for k in keys {
                let got = lru.touch(k);
                let want = model_touch(&mut model, cap, k);
                prop_assert_eq!(got, want);
                prop_assert_eq!(lru.len(), model.len());
                for m in &model {
                    prop_assert!(lru.contains(m));
                }
            }
        }
    }
}
