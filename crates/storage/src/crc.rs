//! Offline CRC32 (IEEE 802.3, the polynomial of zlib/gzip/ethernet).
//!
//! The durability layer checksums every write-ahead-log record and every
//! snapshot it persists; recovery trusts nothing it cannot re-verify. The
//! workspace builds fully offline, so the checksum is implemented here —
//! a 256-entry table generated at compile time — instead of pulling in a
//! crate. The variant is the reflected CRC-32/ISO-HDLC: init `!0`, final
//! xor `!0`, polynomial `0xEDB88320` (bit-reversed `0x04C11DB7`), the
//! exact function whose check value over `"123456789"` is `0xCBF43926`.

/// The 256-entry lookup table, one byte of input per step.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Streaming CRC32 state: [`Crc32::update`] over any number of chunks,
/// then [`Crc32::finish`]. Feeding the same bytes in different chunkings
/// yields the same checksum.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh checksum state.
    pub fn new() -> Self {
        Self { state: !0 }
    }

    /// Folds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        for &b in bytes {
            c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// The checksum of everything fed so far.
    pub fn finish(self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The known-answer vector every CRC-32/ISO-HDLC implementation must
    /// reproduce (the "check" value of the CRC catalogue).
    #[test]
    fn known_answer_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"write-ahead logging, one record at a time";
        for split in 0..data.len() {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), crc32(data), "split at {split}");
        }
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = b"durability is a property you prove, not assume";
        let base = crc32(data);
        let mut copy = data.to_vec();
        for bit in 0..copy.len() * 8 {
            copy[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&copy), base, "flip of bit {bit} went undetected");
            copy[bit / 8] ^= 1 << (bit % 8);
        }
    }
}
