//! I/O accounting types.

/// Cumulative I/O statistics for a window of execution.
///
/// `bytes_read` feeds the paper's Table 5 ("Data read from disk"); the
/// derived `io_seconds` is the simulated wait that separates *real* from
/// *user* time in Tables 4, 6 and 7.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IoStats {
    /// Bytes transferred from the simulated disk.
    pub bytes_read: u64,
    /// Number of distinct read calls issued to the disk.
    pub read_calls: u64,
    /// Read calls that required a random repositioning (non-sequential).
    pub seeks: u64,
    /// Bytes transferred *to* the simulated disk (delta applies, merges,
    /// index maintenance — the write path's analogue of `bytes_read`).
    pub bytes_written: u64,
    /// Number of distinct write calls issued to the disk.
    pub write_calls: u64,
    /// Simulated seconds spent waiting on the disk (reads and writes).
    pub io_seconds: f64,
}

impl IoStats {
    /// `self - earlier`, for windowed measurements.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            bytes_read: self.bytes_read - earlier.bytes_read,
            read_calls: self.read_calls - earlier.read_calls,
            seeks: self.seeks - earlier.seeks,
            bytes_written: self.bytes_written - earlier.bytes_written,
            write_calls: self.write_calls - earlier.write_calls,
            io_seconds: self.io_seconds - earlier.io_seconds,
        }
    }

    /// Bytes read, in decimal megabytes (the unit of Table 5 / Figure 5).
    pub fn megabytes_read(&self) -> f64 {
        self.bytes_read as f64 / 1_000_000.0
    }
}

/// One point of the Figure 5 I/O read history: after some amount of
/// (simulated real) time, how many bytes have been read cumulatively.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoTracePoint {
    /// Simulated real-time offset from the start of the traced window,
    /// in seconds (I/O wait so far + measured compute so far).
    pub at_seconds: f64,
    /// Cumulative bytes read since the trace began.
    pub cumulative_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_fields() {
        let a = IoStats {
            bytes_read: 100,
            read_calls: 3,
            seeks: 2,
            bytes_written: 50,
            write_calls: 2,
            io_seconds: 1.5,
        };
        let b = IoStats {
            bytes_read: 40,
            read_calls: 1,
            seeks: 1,
            bytes_written: 20,
            write_calls: 1,
            io_seconds: 0.5,
        };
        let d = a.since(&b);
        assert_eq!(d.bytes_read, 60);
        assert_eq!(d.read_calls, 2);
        assert_eq!(d.seeks, 1);
        assert_eq!(d.bytes_written, 30);
        assert_eq!(d.write_calls, 1);
        assert!((d.io_seconds - 1.0).abs() < 1e-12);
    }

    #[test]
    fn megabytes_are_decimal() {
        let s = IoStats {
            bytes_read: 2_500_000,
            ..Default::default()
        };
        assert!((s.megabytes_read() - 2.5).abs() < 1e-12);
    }
}
