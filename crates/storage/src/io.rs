//! I/O accounting types.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative I/O statistics for a window of execution.
///
/// `bytes_read` feeds the paper's Table 5 ("Data read from disk"); the
/// derived `io_seconds` is the simulated wait that separates *real* from
/// *user* time in Tables 4, 6 and 7.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IoStats {
    /// Bytes transferred from the simulated disk.
    pub bytes_read: u64,
    /// Number of distinct read calls issued to the disk.
    pub read_calls: u64,
    /// Read calls that required a random repositioning (non-sequential).
    pub seeks: u64,
    /// Bytes transferred *to* the simulated disk (delta applies, merges,
    /// index maintenance — the write path's analogue of `bytes_read`).
    pub bytes_written: u64,
    /// Number of distinct write calls issued to the disk.
    pub write_calls: u64,
    /// Number of `fsync` calls the durability layer issued against *real*
    /// files (WAL appends, snapshot publication). Unlike the simulated
    /// counters above, these measure actual durable I/O.
    pub syncs: u64,
    /// Bytes made durable by those syncs (each written byte is counted
    /// once, by the first sync that covers it).
    pub bytes_synced: u64,
    /// Simulated seconds spent waiting on the disk (reads and writes).
    pub io_seconds: f64,
}

impl IoStats {
    /// `self - earlier`, for windowed measurements.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            bytes_read: self.bytes_read - earlier.bytes_read,
            read_calls: self.read_calls - earlier.read_calls,
            seeks: self.seeks - earlier.seeks,
            bytes_written: self.bytes_written - earlier.bytes_written,
            write_calls: self.write_calls - earlier.write_calls,
            syncs: self.syncs - earlier.syncs,
            bytes_synced: self.bytes_synced - earlier.bytes_synced,
            io_seconds: self.io_seconds - earlier.io_seconds,
        }
    }

    /// Bytes read, in decimal megabytes (the unit of Table 5 / Figure 5).
    pub fn megabytes_read(&self) -> f64 {
        self.bytes_read as f64 / 1_000_000.0
    }
}

/// The live, thread-safe form of [`IoStats`]: every counter is an atomic,
/// so workers of a parallel query can account I/O concurrently and
/// readers can [`AtomicIoStats::snapshot`] without taking any lock —
/// accounting stays truthful (no lost updates, no torn reads of
/// individual counters) under intra-query parallelism.
///
/// `io_seconds` is kept as `f64` bits behind a compare-exchange loop:
/// no update is ever lost. The accumulation order under concurrency is
/// whatever the interleaving was, so totals can differ from a
/// sequential-order sum in the last ulps (f64 addition is not
/// associative) — never by a dropped term.
#[derive(Debug, Default)]
pub struct AtomicIoStats {
    bytes_read: AtomicU64,
    read_calls: AtomicU64,
    seeks: AtomicU64,
    bytes_written: AtomicU64,
    write_calls: AtomicU64,
    syncs: AtomicU64,
    bytes_synced: AtomicU64,
    io_seconds_bits: AtomicU64,
}

/// Adds `v` to an `f64` stored as bits in an atomic cell.
fn add_f64(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(now) => cur = now,
        }
    }
}

impl AtomicIoStats {
    /// A zeroed accounting sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accounts one read call of `bytes`, with `seeked` marking a
    /// non-sequential reposition, waiting `secs` simulated seconds.
    pub fn record_read(&self, bytes: u64, seeked: bool, secs: f64) {
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.read_calls.fetch_add(1, Ordering::Relaxed);
        if seeked {
            self.seeks.fetch_add(1, Ordering::Relaxed);
        }
        add_f64(&self.io_seconds_bits, secs);
    }

    /// Accounts one write call (same fields as [`AtomicIoStats::record_read`]).
    pub fn record_write(&self, bytes: u64, seeked: bool, secs: f64) {
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        self.write_calls.fetch_add(1, Ordering::Relaxed);
        if seeked {
            self.seeks.fetch_add(1, Ordering::Relaxed);
        }
        add_f64(&self.io_seconds_bits, secs);
    }

    /// Accounts one real `fsync` that made `bytes` previously-written
    /// bytes durable. No simulated wait is charged: the durability layer
    /// runs against real files whose cost is measured, not modeled.
    pub fn record_sync(&self, bytes: u64) {
        self.syncs.fetch_add(1, Ordering::Relaxed);
        self.bytes_synced.fetch_add(bytes, Ordering::Relaxed);
    }

    /// A point-in-time [`IoStats`] copy (lock-free).
    pub fn snapshot(&self) -> IoStats {
        IoStats {
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            read_calls: self.read_calls.load(Ordering::Relaxed),
            seeks: self.seeks.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            write_calls: self.write_calls.load(Ordering::Relaxed),
            syncs: self.syncs.load(Ordering::Relaxed),
            bytes_synced: self.bytes_synced.load(Ordering::Relaxed),
            io_seconds: f64::from_bits(self.io_seconds_bits.load(Ordering::Relaxed)),
        }
    }

    /// Zeroes every counter.
    pub fn reset(&self) {
        self.bytes_read.store(0, Ordering::Relaxed);
        self.read_calls.store(0, Ordering::Relaxed);
        self.seeks.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.write_calls.store(0, Ordering::Relaxed);
        self.syncs.store(0, Ordering::Relaxed);
        self.bytes_synced.store(0, Ordering::Relaxed);
        self.io_seconds_bits
            .store(0.0f64.to_bits(), Ordering::Relaxed);
    }
}

/// One point of the Figure 5 I/O read history: after some amount of
/// (simulated real) time, how many bytes have been read cumulatively.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoTracePoint {
    /// Simulated real-time offset from the start of the traced window,
    /// in seconds (I/O wait so far + measured compute so far).
    pub at_seconds: f64,
    /// Cumulative bytes read since the trace began.
    pub cumulative_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_fields() {
        let a = IoStats {
            bytes_read: 100,
            read_calls: 3,
            seeks: 2,
            bytes_written: 50,
            write_calls: 2,
            syncs: 4,
            bytes_synced: 48,
            io_seconds: 1.5,
        };
        let b = IoStats {
            bytes_read: 40,
            read_calls: 1,
            seeks: 1,
            bytes_written: 20,
            write_calls: 1,
            syncs: 1,
            bytes_synced: 8,
            io_seconds: 0.5,
        };
        let d = a.since(&b);
        assert_eq!(d.bytes_read, 60);
        assert_eq!(d.read_calls, 2);
        assert_eq!(d.seeks, 1);
        assert_eq!(d.bytes_written, 30);
        assert_eq!(d.write_calls, 1);
        assert_eq!(d.syncs, 3);
        assert_eq!(d.bytes_synced, 40);
        assert!((d.io_seconds - 1.0).abs() < 1e-12);
    }

    #[test]
    fn atomic_stats_accumulate_and_snapshot_exactly() {
        let a = AtomicIoStats::new();
        a.record_read(100, true, 0.25);
        a.record_read(50, false, 0.125);
        a.record_write(30, true, 0.5);
        a.record_sync(30);
        let s = a.snapshot();
        assert_eq!(s.bytes_read, 150);
        assert_eq!(s.read_calls, 2);
        assert_eq!(s.seeks, 2);
        assert_eq!(s.bytes_written, 30);
        assert_eq!(s.write_calls, 1);
        assert_eq!(s.syncs, 1);
        assert_eq!(s.bytes_synced, 30);
        assert_eq!(s.io_seconds, 0.875, "exact f64 accumulation");
        a.reset();
        assert_eq!(a.snapshot(), IoStats::default());
    }

    /// Concurrent accounting loses nothing — the reason the counters are
    /// atomics rather than a copied struct.
    #[test]
    fn atomic_stats_are_race_free_across_threads() {
        let a = AtomicIoStats::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        a.record_read(8, false, 0.001);
                    }
                });
            }
        });
        let snap = a.snapshot();
        assert_eq!(snap.bytes_read, 4 * 1000 * 8);
        assert_eq!(snap.read_calls, 4000);
        assert!((snap.io_seconds - 4.0).abs() < 1e-9);
    }

    #[test]
    fn megabytes_are_decimal() {
        let s = IoStats {
            bytes_read: 2_500_000,
            ..Default::default()
        };
        assert!((s.megabytes_read() - 2.5).abs() < 1e-12);
    }
}
