//! The simulated disk: converts page reads into accounted bytes, seeks and
//! simulated wait seconds according to a [`MachineProfile`].

use std::sync::Arc;
use std::time::Instant;

use crate::io::{AtomicIoStats, IoStats, IoTracePoint};
use crate::machine::MachineProfile;
use crate::manager::SegmentId;
use crate::PAGE_SIZE;

/// Cost-model state for one simulated disk.
///
/// A read of a run of pages that continues exactly where the previous read
/// left off (same segment, next page) is *sequential* and only pays
/// transfer time; any other read pays one seek penalty first. This is what
/// rewards clustered range scans and punishes scattered secondary-index
/// probes, the paper's central row-store mechanism (§4.3: PSO clustering
/// halves real time because "DBX is spending half of the execution time
/// waiting for the data").
#[derive(Debug)]
pub struct SimDisk {
    profile: MachineProfile,
    /// Shared atomic accounting sink: clones of this handle observe the
    /// disk's counters lock-free and race-free (see
    /// [`SimDisk::stats_handle`]).
    stats: Arc<AtomicIoStats>,
    /// Position after the previous read: (segment, next page index).
    head: Option<(SegmentId, u32)>,
    trace: Option<TraceState>,
}

#[derive(Debug)]
struct TraceState {
    points: Vec<IoTracePoint>,
    started_wall: Instant,
    started_io_seconds: f64,
    start_bytes: u64,
}

impl SimDisk {
    /// A fresh disk with zeroed statistics.
    pub fn new(profile: MachineProfile) -> Self {
        Self {
            profile,
            stats: Arc::new(AtomicIoStats::new()),
            head: None,
            trace: None,
        }
    }

    /// The machine profile driving the cost model.
    pub fn profile(&self) -> MachineProfile {
        self.profile
    }

    /// A shared handle onto the disk's atomic counters — readers snapshot
    /// through it without synchronizing with the disk itself.
    pub fn stats_handle(&self) -> Arc<AtomicIoStats> {
        self.stats.clone()
    }

    /// Reads `count` pages starting at `first` from `seg`, charging
    /// transfer time and, if the access is not sequential, one seek.
    pub fn read_run(&mut self, seg: SegmentId, first: u32, count: u32) {
        if count == 0 {
            return;
        }
        let bytes = count as u64 * PAGE_SIZE as u64;
        let sequential = self.head == Some((seg, first));
        let mut secs = self.profile.transfer_seconds(bytes);
        if !sequential {
            secs += self.profile.seek_seconds(1);
        }
        self.stats.record_read(bytes, !sequential, secs);
        self.head = Some((seg, first + count));

        if let Some(tr) = &mut self.trace {
            let now = self.stats.snapshot();
            let at =
                (now.io_seconds - tr.started_io_seconds) + tr.started_wall.elapsed().as_secs_f64();
            tr.points.push(IoTracePoint {
                at_seconds: at,
                cumulative_bytes: now.bytes_read - tr.start_bytes,
            });
        }
    }

    /// Writes `count` pages starting at `first` to `seg`, charging
    /// transfer time (at the profile's sequential bandwidth — the
    /// simulation does not model a separate write channel) and, if the
    /// access is not sequential, one seek. This is the cost of the write
    /// path: delta applies, B+tree maintenance, and read-store merges.
    pub fn write_run(&mut self, seg: SegmentId, first: u32, count: u32) {
        if count == 0 {
            return;
        }
        let bytes = count as u64 * PAGE_SIZE as u64;
        let sequential = self.head == Some((seg, first));
        let mut secs = self.profile.transfer_seconds(bytes);
        if !sequential {
            secs += self.profile.seek_seconds(1);
        }
        self.stats.record_write(bytes, !sequential, secs);
        self.head = Some((seg, first + count));
    }

    /// Current cumulative statistics.
    pub fn stats(&self) -> IoStats {
        self.stats.snapshot()
    }

    /// Zeroes the statistics (the head position is kept: resetting counters
    /// does not teleport the disk arm).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Starts recording an I/O read history (Figure 5). Any previous trace
    /// is discarded.
    pub fn begin_trace(&mut self) {
        let now = self.stats.snapshot();
        self.trace = Some(TraceState {
            points: Vec::new(),
            started_wall: Instant::now(),
            started_io_seconds: now.io_seconds,
            start_bytes: now.bytes_read,
        });
    }

    /// Stops tracing and returns the recorded history.
    pub fn take_trace(&mut self) -> Vec<IoTracePoint> {
        self.trace.take().map(|t| t.points).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> SimDisk {
        SimDisk::new(MachineProfile::A)
    }

    #[test]
    fn sequential_reads_pay_no_extra_seek() {
        let mut d = disk();
        let seg = SegmentId(0);
        d.read_run(seg, 0, 10);
        let s1 = d.stats();
        assert_eq!(s1.seeks, 1, "first read seeks once");
        d.read_run(seg, 10, 10);
        let s2 = d.stats();
        assert_eq!(s2.seeks, 1, "continuation is sequential");
        assert_eq!(s2.bytes_read, 20 * PAGE_SIZE as u64);
    }

    #[test]
    fn random_reads_each_seek() {
        let mut d = disk();
        let seg = SegmentId(0);
        d.read_run(seg, 0, 1);
        d.read_run(seg, 100, 1);
        d.read_run(seg, 5, 1);
        assert_eq!(d.stats().seeks, 3);
    }

    #[test]
    fn switching_segments_seeks() {
        let mut d = disk();
        d.read_run(SegmentId(0), 0, 4);
        d.read_run(SegmentId(1), 4, 4); // same page index, different segment
        assert_eq!(d.stats().seeks, 2);
    }

    #[test]
    fn io_seconds_match_profile_math() {
        let mut d = disk();
        d.read_run(SegmentId(0), 0, 100);
        let want = MachineProfile::A.transfer_seconds(100 * PAGE_SIZE as u64)
            + MachineProfile::A.seek_seconds(1);
        assert!((d.stats().io_seconds - want).abs() < 1e-12);
    }

    #[test]
    fn trace_records_cumulative_bytes() {
        let mut d = disk();
        d.read_run(SegmentId(0), 0, 1); // untraced
        d.begin_trace();
        d.read_run(SegmentId(0), 1, 2);
        d.read_run(SegmentId(0), 3, 3);
        let tr = d.take_trace();
        assert_eq!(tr.len(), 2);
        assert_eq!(tr[0].cumulative_bytes, 2 * PAGE_SIZE as u64);
        assert_eq!(tr[1].cumulative_bytes, 5 * PAGE_SIZE as u64);
        assert!(tr[1].at_seconds >= tr[0].at_seconds);
        assert!(d.take_trace().is_empty(), "trace is consumed");
    }

    #[test]
    fn writes_account_separately_from_reads() {
        let mut d = disk();
        d.write_run(SegmentId(0), 0, 4);
        let s = d.stats();
        assert_eq!(s.bytes_written, 4 * PAGE_SIZE as u64);
        assert_eq!(s.write_calls, 1);
        assert_eq!(s.bytes_read, 0);
        assert_eq!(s.seeks, 1, "first write repositions");
        // A read continuing where the write left off is sequential.
        d.read_run(SegmentId(0), 4, 2);
        assert_eq!(d.stats().seeks, 1);
        let want = MachineProfile::A.transfer_seconds(6 * PAGE_SIZE as u64)
            + MachineProfile::A.seek_seconds(1);
        assert!((d.stats().io_seconds - want).abs() < 1e-12);
    }

    #[test]
    fn zero_page_read_is_free() {
        let mut d = disk();
        d.read_run(SegmentId(0), 0, 0);
        assert_eq!(d.stats(), IoStats::default());
    }
}
