//! The checksummed write-ahead log.
//!
//! One WAL record carries one committed batch (a `Delta` plus the
//! dictionary terms it introduced, encoded by the core layer — the WAL
//! itself is payload-agnostic). The on-disk format per record is
//!
//! ```text
//! [payload_len: u32 LE][seq: u64 LE][payload bytes][crc32: u32 LE]
//! ```
//!
//! where the CRC covers the 12 header bytes *and* the payload, so a flip
//! anywhere in a record — length, sequence number, body — is detected.
//! Sequence numbers are strictly monotone (+1 per record); a gap means
//! the file is not a log this writer produced, and parsing stops there.
//!
//! ## Recovery contract
//!
//! [`parse_wal`] never fails and never panics: it returns every record of
//! the longest valid prefix plus a [`WalTail`] describing how the log
//! ends. A torn final record (the classic crash-mid-append), a checksum
//! mismatch, or a sequence break all yield [`WalTail::Torn`] — a *clean
//! end of log*, because the commit protocol acknowledges a batch only
//! after its record is fully written (and, under the default policy,
//! fsynced): anything unparseable past the valid prefix was never
//! acknowledged.
//!
//! ## Append protocol
//!
//! [`WalWriter::append`] writes the record, optionally re-reads and
//! compares it ([`WalOptions::verify_appends`] — this is what catches a
//! silently corrupted write before it is acknowledged), optionally
//! fsyncs ([`WalOptions::sync_on_commit`]), and only then returns the
//! record's sequence number. An append that errors rolls the file back
//! to the record boundary when it can; if even the rollback fails the
//! writer poisons itself rather than risk appending after garbage.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::crc::Crc32;
use crate::fault::{DurableFile, FaultState};
use crate::io::AtomicIoStats;

/// File name of the write-ahead log inside a durable database directory.
pub const WAL_FILE: &str = "wal.swans";

/// Bytes of fixed framing around a record's payload (u32 length + u64
/// sequence number + u32 CRC).
pub const RECORD_OVERHEAD: usize = 16;

/// One decoded WAL record: a sequence number and an opaque payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Strictly monotone commit sequence number.
    pub seq: u64,
    /// The batch payload, exactly as handed to [`WalWriter::append`].
    pub payload: Vec<u8>,
}

/// How a parsed WAL ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalTail {
    /// The file ends exactly at a record boundary.
    Clean,
    /// The bytes past `valid_bytes` do not form a valid record — a torn
    /// final append, bit rot, or a sequence break. Recovery treats this
    /// as the end of the log and truncates the tail.
    Torn {
        /// Length of the longest valid prefix, in bytes.
        valid_bytes: u64,
        /// Human-readable cause, for logs and recovery reports.
        reason: String,
    },
}

impl WalTail {
    /// True if the log ended on a record boundary.
    pub fn is_clean(&self) -> bool {
        matches!(self, WalTail::Clean)
    }
}

/// Encodes one record (framing + checksum) ready to append.
pub fn encode_record(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_OVERHEAD + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(payload);
    let mut crc = Crc32::new();
    crc.update(&out);
    out.extend_from_slice(&crc.finish().to_le_bytes());
    out
}

/// Parses a WAL image into the longest valid record prefix plus a
/// [`WalTail`]. Total function: any byte sequence yields a well-defined
/// result, never a panic, never an error. Payload lengths are validated
/// against the remaining file before any allocation, so a corrupted
/// length field cannot trigger a huge allocation.
pub fn parse_wal(bytes: &[u8]) -> (Vec<WalRecord>, WalTail) {
    let mut records = Vec::new();
    let mut offset = 0usize;
    let mut prev_seq: Option<u64> = None;
    let torn = |offset: usize, reason: &str| WalTail::Torn {
        valid_bytes: offset as u64,
        reason: reason.to_string(),
    };
    while offset < bytes.len() {
        let rest = &bytes[offset..];
        if rest.len() < RECORD_OVERHEAD {
            return (records, torn(offset, "torn record header"));
        }
        let payload_len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
        let Some(record_len) = payload_len.checked_add(RECORD_OVERHEAD) else {
            return (records, torn(offset, "record length overflows"));
        };
        if rest.len() < record_len {
            return (records, torn(offset, "record length exceeds file"));
        }
        let seq = u64::from_le_bytes(rest[4..12].try_into().unwrap());
        let body_end = 12 + payload_len;
        let stored_crc = u32::from_le_bytes(rest[body_end..record_len].try_into().unwrap());
        let mut crc = Crc32::new();
        crc.update(&rest[..body_end]);
        if crc.finish() != stored_crc {
            return (records, torn(offset, "checksum mismatch"));
        }
        if let Some(prev) = prev_seq {
            if seq != prev + 1 {
                return (records, torn(offset, "sequence break"));
            }
        }
        prev_seq = Some(seq);
        records.push(WalRecord {
            seq,
            payload: rest[12..body_end].to_vec(),
        });
        offset += record_len;
    }
    (records, WalTail::Clean)
}

/// Commit-policy knobs for the [`WalWriter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalOptions {
    /// Fsync after every append, before acknowledging it. On (the
    /// default), an acknowledged batch survives any crash; off trades
    /// that guarantee for throughput (a crash may lose a suffix of
    /// acknowledged batches, but never tears one).
    pub sync_on_commit: bool,
    /// Re-read and compare every appended record before acknowledging
    /// it, catching silent write corruption while rollback is still
    /// possible. Default on.
    pub verify_appends: bool,
}

impl Default for WalOptions {
    fn default() -> Self {
        Self {
            sync_on_commit: true,
            verify_appends: true,
        }
    }
}

/// The appending side of the write-ahead log.
#[derive(Debug)]
pub struct WalWriter {
    file: DurableFile,
    path: PathBuf,
    next_seq: u64,
    options: WalOptions,
    poisoned: bool,
}

impl WalWriter {
    /// Opens (creating if absent) the WAL at `path`, parses it, truncates
    /// any torn tail, and returns the valid records, how the log ended,
    /// and a writer positioned to continue. `base_seq` is the highest
    /// sequence number already durable elsewhere (the snapshot's
    /// `last_seq`; 0 for a fresh database) — the writer continues above
    /// both it and the log's own last record.
    pub fn recover(
        path: &Path,
        faults: Arc<FaultState>,
        options: WalOptions,
        base_seq: u64,
    ) -> io::Result<(Vec<WalRecord>, WalTail, WalWriter)> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let (records, tail) = parse_wal(&bytes);
        let mut file = DurableFile::open_end(path, faults)?;
        if let WalTail::Torn { valid_bytes, .. } = &tail {
            file.set_len(*valid_bytes)?;
        }
        let last = records.last().map_or(0, |r| r.seq);
        let writer = WalWriter {
            file,
            path: path.to_path_buf(),
            next_seq: last.max(base_seq) + 1,
            options,
            poisoned: false,
        };
        Ok((records, tail, writer))
    }

    /// Attaches an fsync-accounting sink.
    pub fn set_stats(&mut self, stats: Arc<AtomicIoStats>) {
        self.file.set_stats(stats);
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Sequence number the next append will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Current log length in bytes (valid records only).
    pub fn len_bytes(&self) -> u64 {
        self.file.pos()
    }

    /// Appends one batch payload as a checksummed record, verifies and
    /// syncs it per the [`WalOptions`], and returns its sequence number.
    /// When this returns `Ok`, the batch is acknowledged: under
    /// `sync_on_commit` it survives any subsequent crash. On error the
    /// batch is *not* acknowledged — the record may or may not have
    /// reached disk, and recovery is free to keep or drop it (the crash
    /// matrix asserts exactly this envelope).
    pub fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        if self.poisoned {
            return Err(io::Error::other(
                "WAL writer poisoned by an earlier failed rollback",
            ));
        }
        let seq = self.next_seq;
        let record = encode_record(seq, payload);
        let start = self.file.pos();
        self.file.write_all(&record)?;
        if self.options.verify_appends {
            let back = self.file.read_at(start, record.len())?;
            if back != record {
                // The write landed wrong (e.g. silent bit corruption).
                // Roll back to the record boundary so the log stays a
                // valid prefix; if even that fails, poison the writer.
                if self.file.set_len(start).is_err() {
                    self.poisoned = true;
                }
                return Err(io::Error::other(
                    "WAL append verification failed: written record does not match",
                ));
            }
        }
        if self.options.sync_on_commit {
            self.file.sync()?;
        }
        self.next_seq = seq + 1;
        Ok(seq)
    }

    /// Forces the log to stable storage (used by checkpointing even when
    /// `sync_on_commit` is off).
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync()
    }

    /// Empties the log after a checkpoint has made its records redundant.
    /// Sequence numbers keep counting — the snapshot's `last_seq` and the
    /// log's first record stay contiguous.
    pub fn truncate(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "swans-wal-{}-{}-{}",
            tag,
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    /// Tiny deterministic RNG (xorshift64*), the workspace's offline
    /// stand-in for a proptest generator.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    fn random_payloads(rng: &mut Rng, n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|_| {
                let len = (rng.next() % 64) as usize;
                (0..len).map(|_| (rng.next() & 0xFF) as u8).collect()
            })
            .collect()
    }

    fn encode_log(payloads: &[Vec<u8>]) -> Vec<u8> {
        let mut bytes = Vec::new();
        for (i, p) in payloads.iter().enumerate() {
            bytes.extend_from_slice(&encode_record(i as u64 + 1, p));
        }
        bytes
    }

    #[test]
    fn round_trip_random_logs() {
        let mut rng = Rng(0x5EED_0007);
        for trial in 0..50 {
            let payloads = random_payloads(&mut rng, (trial % 7) + 1);
            let (records, tail) = parse_wal(&encode_log(&payloads));
            assert!(tail.is_clean());
            assert_eq!(records.len(), payloads.len());
            for (i, (r, p)) in records.iter().zip(&payloads).enumerate() {
                assert_eq!(r.seq, i as u64 + 1);
                assert_eq!(&r.payload, p);
            }
        }
    }

    #[test]
    fn empty_input_is_a_clean_empty_log() {
        let (records, tail) = parse_wal(&[]);
        assert!(records.is_empty());
        assert!(tail.is_clean());
    }

    /// Every single-bit corruption of a valid log is detected: parsing
    /// yields a strict prefix of the original records and a torn tail —
    /// never a panic, never a corrupted record accepted.
    #[test]
    fn single_bit_corruption_always_yields_a_valid_prefix() {
        let mut rng = Rng(0xBAD_B17);
        let payloads = random_payloads(&mut rng, 4);
        let bytes = encode_log(&payloads);
        let (originals, _) = parse_wal(&bytes);
        for bit in 0..bytes.len() * 8 {
            let mut copy = bytes.clone();
            copy[bit / 8] ^= 1 << (bit % 8);
            let (records, tail) = parse_wal(&copy);
            assert!(
                records.len() < originals.len(),
                "flip of bit {bit} was not detected"
            );
            assert!(!tail.is_clean(), "flip of bit {bit}: tail claims clean");
            assert_eq!(
                records,
                originals[..records.len()],
                "flip of bit {bit}: surviving prefix differs"
            );
        }
    }

    /// Truncation at every byte boundary: the torn tail is reported and
    /// exactly the fully-contained records survive.
    #[test]
    fn truncation_at_every_point_keeps_the_contained_prefix() {
        let mut rng = Rng(0x7072_EF1C);
        let payloads = random_payloads(&mut rng, 3);
        let bytes = encode_log(&payloads);
        let mut boundaries = vec![0usize];
        for p in &payloads {
            boundaries.push(boundaries.last().unwrap() + RECORD_OVERHEAD + p.len());
        }
        for cut in 0..bytes.len() {
            let (records, tail) = parse_wal(&bytes[..cut]);
            let contained = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(records.len(), contained, "cut at {cut}");
            if boundaries.contains(&cut) {
                assert!(tail.is_clean(), "cut at boundary {cut} should be clean");
            } else {
                assert!(!tail.is_clean(), "cut mid-record at {cut} must be torn");
            }
        }
    }

    #[test]
    fn sequence_break_ends_the_log() {
        let mut bytes = encode_record(1, b"a");
        bytes.extend_from_slice(&encode_record(3, b"b")); // gap: 2 missing
        let (records, tail) = parse_wal(&bytes);
        assert_eq!(records.len(), 1);
        match tail {
            WalTail::Torn { reason, .. } => assert!(reason.contains("sequence")),
            WalTail::Clean => panic!("sequence break not detected"),
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // real file I/O
    fn writer_appends_recovers_and_truncates() {
        let dir = scratch("writer");
        let path = dir.join(WAL_FILE);
        let opts = WalOptions::default();
        {
            let (records, tail, mut w) =
                WalWriter::recover(&path, FaultState::new(), opts, 0).unwrap();
            assert!(records.is_empty() && tail.is_clean());
            assert_eq!(w.append(b"first").unwrap(), 1);
            assert_eq!(w.append(b"second").unwrap(), 2);
        }
        // Reopen: both batches replay; the writer continues at seq 3.
        {
            let (records, tail, mut w) =
                WalWriter::recover(&path, FaultState::new(), opts, 0).unwrap();
            assert!(tail.is_clean());
            assert_eq!(
                records
                    .iter()
                    .map(|r| r.payload.clone())
                    .collect::<Vec<_>>(),
                vec![b"first".to_vec(), b"second".to_vec()]
            );
            w.truncate().unwrap();
            assert_eq!(
                w.append(b"third").unwrap(),
                3,
                "seq continues after truncate"
            );
        }
        // base_seq from a snapshot dominates an empty/behind log.
        {
            let (_, _, w) = WalWriter::recover(&path, FaultState::new(), opts, 10).unwrap();
            assert_eq!(w.next_seq(), 11);
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    #[cfg_attr(miri, ignore)]
    fn recovery_truncates_a_torn_tail_and_appends_continue() {
        let dir = scratch("torn");
        let path = dir.join(WAL_FILE);
        let opts = WalOptions::default();
        {
            let (_, _, mut w) = WalWriter::recover(&path, FaultState::new(), opts, 0).unwrap();
            w.append(b"kept").unwrap();
            w.append(b"doomed").unwrap();
        }
        // Tear the last record by dropping its final 3 bytes.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let (records, tail, mut w) = WalWriter::recover(&path, FaultState::new(), opts, 0).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].payload, b"kept");
        assert!(!tail.is_clean());
        // The torn bytes are gone; a new append lands cleanly after "kept".
        assert_eq!(w.append(b"after").unwrap(), 2);
        let (records, tail) = parse_wal(&std::fs::read(&path).unwrap());
        assert!(tail.is_clean());
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].payload, b"after");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    #[cfg_attr(miri, ignore)]
    fn verified_append_rolls_back_silent_corruption() {
        use crate::fault::{FaultKind, FaultPolicy};
        let dir = scratch("verify");
        let path = dir.join(WAL_FILE);
        let faults = FaultState::new();
        let (_, _, mut w) =
            WalWriter::recover(&path, faults.clone(), WalOptions::default(), 0).unwrap();
        w.append(b"good").unwrap();
        // Ops so far: open-end (not counted), append write + sync = ops 0,1.
        faults.arm(FaultPolicy {
            at_op: faults.ops(),
            kind: FaultKind::FlipBit { bit: 37 },
        });
        assert!(w.append(b"corrupted-in-flight").is_err());
        faults.disarm();
        // The log still ends at the good record; the writer is usable.
        let (records, tail) = parse_wal(&std::fs::read(&path).unwrap());
        assert!(tail.is_clean(), "rollback left a torn tail: {tail:?}");
        assert_eq!(records.len(), 1);
        assert_eq!(w.append(b"retry").unwrap(), 2);
        let _ = std::fs::remove_dir_all(dir);
    }
}
