//! The buffer pool: tracks which pages are memory-resident.

use crate::lru::LruSet;
use crate::manager::SegmentId;

/// Page-granular buffer pool with LRU replacement.
///
/// An unbounded pool models the paper's main setting, where the data fits
/// in RAM during hot runs; a small bounded pool models C-Store's
/// restrictive buffering, which re-reads data during a single query
/// (Figure 5 discussion).
#[derive(Debug)]
pub struct BufferPool {
    lru: LruSet<(SegmentId, u32)>,
    capacity_pages: usize,
    hits: u64,
    misses: u64,
}

impl BufferPool {
    /// A pool holding at most `capacity_pages` pages; `usize::MAX` for an
    /// effectively unbounded pool.
    pub fn new(capacity_pages: usize) -> Self {
        Self {
            lru: LruSet::new(capacity_pages),
            capacity_pages,
            hits: 0,
            misses: 0,
        }
    }

    /// Pool capacity in pages.
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }

    /// True if the page is resident (refreshes recency on hit).
    /// On miss the page becomes resident (possibly evicting another).
    pub fn access(&mut self, seg: SegmentId, page: u32) -> bool {
        let key = (seg, page);
        if self.lru.contains(&key) {
            self.lru.touch(key);
            self.hits += 1;
            true
        } else {
            self.lru.touch(key);
            self.misses += 1;
            false
        }
    }

    /// Whether the page is resident, without touching recency or counters.
    pub fn peek(&self, seg: SegmentId, page: u32) -> bool {
        self.lru.contains(&(seg, page))
    }

    /// Empties the pool — the *cold run* reset.
    pub fn clear(&mut self) {
        self.lru.clear();
    }

    /// Drops every resident page of `seg` — used when a segment is
    /// rewritten (a merge) and its cached pages go stale.
    pub fn evict_segment(&mut self, seg: SegmentId) {
        self.lru.retain(|&(s, _)| s != seg);
    }

    /// Marks a page resident without classifying the access as a hit or a
    /// miss — the pool-warming effect of *writing* the page.
    pub fn install(&mut self, seg: SegmentId, page: u32) {
        self.lru.touch((seg, page));
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.lru.len()
    }

    /// (hits, misses) since construction.
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_then_hits() {
        let mut p = BufferPool::new(usize::MAX);
        let seg = SegmentId(0);
        assert!(!p.access(seg, 0));
        assert!(p.access(seg, 0));
        assert_eq!(p.hit_miss(), (1, 1));
    }

    #[test]
    fn clear_makes_everything_cold() {
        let mut p = BufferPool::new(usize::MAX);
        let seg = SegmentId(0);
        p.access(seg, 0);
        p.access(seg, 1);
        p.clear();
        assert_eq!(p.resident_pages(), 0);
        assert!(!p.access(seg, 0));
    }

    #[test]
    fn bounded_pool_evicts_and_rereads() {
        let mut p = BufferPool::new(2);
        let seg = SegmentId(0);
        p.access(seg, 0);
        p.access(seg, 1);
        p.access(seg, 2); // evicts page 0
        assert!(!p.access(seg, 0), "page 0 was evicted, must re-read");
        assert_eq!(p.resident_pages(), 2);
    }

    #[test]
    fn peek_does_not_promote() {
        let mut p = BufferPool::new(2);
        let seg = SegmentId(0);
        p.access(seg, 0);
        p.access(seg, 1);
        assert!(p.peek(seg, 0));
        let (h, m) = p.hit_miss();
        assert_eq!((h, m), (0, 2));
    }
}
