//! Fault injection for the durability layer's *real* file I/O.
//!
//! The simulated disk ([`crate::SimDisk`]) models cost; durability needs
//! actual files, and actual files fail in actual ways: a process dies
//! between two writes, a write lands only partially (a torn page), a bit
//! rots silently, a syscall returns `EIO`. Every byte the write-ahead log
//! and the snapshot writer move goes through a [`DurableFile`], which
//! consults a shared [`FaultState`] before each operation — so a test can
//! arm *"fail at the Nth write, this way"* and sweep N across a whole
//! workload (the crash matrix in `tests/durability.rs`).
//!
//! ## The crash model
//!
//! "Killing the process" is modeled, not performed: when a crash fault
//! fires, the [`FaultState`] is poisoned and **every subsequent operation
//! through it fails**, so no later write can land — exactly what a dead
//! process can no longer do. Whatever reached the file system before the
//! crash stays there, and recovery reopens the same paths with a fresh
//! (fault-free) state. Two write-time faults bracket what a real kernel
//! may do with an un-synced write: [`FaultKind::CrashBefore`] loses it
//! entirely, [`FaultKind::Torn`] keeps an arbitrary prefix.
//!
//! Reads are never faulted: recovery code must handle *any* byte sequence
//! a faulted writer can leave behind, and the corruption fuzzer covers
//! byte-level rot on the read side directly.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::io::AtomicIoStats;

/// What happens when an armed fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The process dies *before* the operation: nothing lands, every
    /// later operation fails.
    CrashBefore,
    /// A torn write: only the first `keep` bytes of the buffer land, then
    /// the process dies.
    Torn {
        /// Bytes of the faulted write that reach the file.
        keep: usize,
    },
    /// Silent corruption: one bit of the written buffer is flipped and the
    /// write *succeeds* — nothing notices until a checksum is re-verified.
    FlipBit {
        /// Which bit to flip, taken modulo the buffer's bit length.
        bit: u64,
    },
    /// The operation returns an injected I/O error; the process survives
    /// and may retry or continue.
    Error,
}

/// One armed fault: fire [`FaultPolicy::kind`] on the
/// [`FaultPolicy::at_op`]-th subsequent faultable operation (0-based;
/// writes, syncs, truncations and renames all count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPolicy {
    /// Index of the operation to fault (0 = the very next one).
    pub at_op: u64,
    /// How that operation fails.
    pub kind: FaultKind,
}

/// Shared fault-injection state: an operation counter, at most one armed
/// policy, and the crash poison. All files of one durable database share
/// one `Arc<FaultState>`, so the operation index is global across the WAL
/// and the snapshot writer — every write of a workload is one sweepable
/// injection point.
#[derive(Debug, Default)]
pub struct FaultState {
    ops: AtomicU64,
    crashed: AtomicBool,
    policy: Mutex<Option<FaultPolicy>>,
}

impl FaultState {
    /// A fresh, fault-free state (the production default: with no policy
    /// armed it only counts operations).
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Arms `policy`, replacing any previous one.
    pub fn arm(&self, policy: FaultPolicy) {
        *self.policy.lock().unwrap_or_else(|e| e.into_inner()) = Some(policy);
    }

    /// Removes the armed policy (operations keep counting).
    pub fn disarm(&self) {
        *self.policy.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }

    /// Number of faultable operations seen so far.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// True once a crash fault has fired: the modeled process is dead and
    /// every further operation through this state fails.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::Relaxed)
    }

    /// The error every post-crash operation returns.
    fn dead(&self) -> io::Error {
        io::Error::other("injected crash: the process model is dead")
    }

    /// Begins one faultable operation: fails if already crashed, counts
    /// the operation, and returns the fault to apply (if the armed policy
    /// names this index).
    fn begin_op(&self) -> io::Result<Option<FaultKind>> {
        if self.crashed() {
            return Err(self.dead());
        }
        let index = self.ops.fetch_add(1, Ordering::Relaxed);
        let armed = *self.policy.lock().unwrap_or_else(|e| e.into_inner());
        Ok(armed.and_then(|p| (p.at_op == index).then_some(p.kind)))
    }

    /// Marks the modeled process dead and returns the crash error.
    fn crash(&self) -> io::Error {
        self.crashed.store(true, Ordering::Relaxed);
        self.dead()
    }
}

/// A file whose writes, syncs and truncations pass through a
/// [`FaultState`], with fsync accounting into an [`AtomicIoStats`] sink.
///
/// The durability layer performs every mutation of the write-ahead log
/// and the snapshot files through this type; positions are tracked
/// explicitly (no append mode), so a read-back verification can re-read
/// exactly the range a write claimed to cover.
#[derive(Debug)]
pub struct DurableFile {
    file: File,
    pos: u64,
    unsynced: u64,
    faults: Arc<FaultState>,
    stats: Option<Arc<AtomicIoStats>>,
}

impl DurableFile {
    /// Creates (truncating) `path` for writing.
    pub fn create(path: &Path, faults: Arc<FaultState>) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self {
            file,
            pos: 0,
            unsynced: 0,
            faults,
            stats: None,
        })
    }

    /// Opens `path` (creating it empty if missing) positioned at its end —
    /// the write-ahead-log append mode.
    pub fn open_end(path: &Path, faults: Arc<FaultState>) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let pos = file.metadata()?.len();
        Ok(Self {
            file,
            pos,
            unsynced: 0,
            faults,
            stats: None,
        })
    }

    /// Attaches an accounting sink: every [`DurableFile::sync`] records
    /// one fsync and the bytes it made durable.
    pub fn with_stats(mut self, stats: Arc<AtomicIoStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Replaces the accounting sink after construction.
    pub fn set_stats(&mut self, stats: Arc<AtomicIoStats>) {
        self.stats = Some(stats);
    }

    /// Current write position (bytes from the start of the file).
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// Writes all of `buf` at the current position, applying any armed
    /// fault: a crash loses the buffer (entirely or beyond a torn
    /// prefix), a bit flip corrupts it silently, an injected error leaves
    /// the file untouched.
    pub fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.faults.begin_op()? {
            None => self.write_plain(buf),
            Some(FaultKind::CrashBefore) => Err(self.faults.crash()),
            Some(FaultKind::Torn { keep }) => {
                let keep = keep.min(buf.len());
                // The prefix lands (the part of the page the disk got to)
                // and then the process dies: pos is never advanced, no
                // later write can run anyway.
                self.write_plain(&buf[..keep]).ok();
                let _ = self.file.sync_all();
                Err(self.faults.crash())
            }
            Some(FaultKind::FlipBit { bit }) => {
                let mut copy = buf.to_vec();
                if !copy.is_empty() {
                    let b = (bit % (copy.len() as u64 * 8)) as usize;
                    copy[b / 8] ^= 1 << (b % 8);
                }
                self.write_plain(&copy)
            }
            Some(FaultKind::Error) => Err(io::Error::other("injected I/O error on write")),
        }
    }

    fn write_plain(&mut self, buf: &[u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(self.pos))?;
        self.file.write_all(buf)?;
        self.pos += buf.len() as u64;
        self.unsynced += buf.len() as u64;
        Ok(())
    }

    /// Forces written bytes to stable storage (`fsync`), recording the
    /// sync and its byte count in the attached stats sink.
    pub fn sync(&mut self) -> io::Result<()> {
        match self.faults.begin_op()? {
            None => {
                self.file.sync_all()?;
                if let Some(stats) = &self.stats {
                    stats.record_sync(self.unsynced);
                }
                self.unsynced = 0;
                Ok(())
            }
            Some(FaultKind::Error) => Err(io::Error::other("injected I/O error on fsync")),
            // A crash at sync time: the bytes were already handed to the
            // file system (and in this model persist), but the caller
            // never sees the acknowledgement.
            Some(_) => Err(self.faults.crash()),
        }
    }

    /// Truncates the file to `len` bytes and repositions the writer.
    pub fn set_len(&mut self, len: u64) -> io::Result<()> {
        match self.faults.begin_op()? {
            None => {
                self.file.set_len(len)?;
                self.pos = len;
                Ok(())
            }
            Some(FaultKind::Error) => Err(io::Error::other("injected I/O error on truncate")),
            Some(_) => Err(self.faults.crash()),
        }
    }

    /// Reads exactly `len` bytes at `offset` (not faulted — see the
    /// module docs). Used for read-back verification of writes.
    pub fn read_at(&mut self, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        self.file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        self.file.read_exact(&mut buf)?;
        Ok(buf)
    }
}

/// Renames `from` to `to` through the fault layer (the atomic-commit step
/// of snapshot publication): a crash fault prevents the rename entirely —
/// the rename syscall itself is atomic, so there is no torn variant.
pub fn rename(faults: &FaultState, from: &Path, to: &Path) -> io::Result<()> {
    match faults.begin_op()? {
        None => std::fs::rename(from, to),
        Some(FaultKind::Error) => Err(io::Error::other("injected I/O error on rename")),
        Some(_) => Err(faults.crash()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::AtomicU32;

    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "swans-fault-{}-{}-{}",
            tag,
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    #[cfg_attr(miri, ignore)] // real file I/O
    fn unfaulted_writes_land_and_count_ops() {
        let dir = scratch("plain");
        let faults = FaultState::new();
        let path = dir.join("f");
        let mut f = DurableFile::create(&path, faults.clone()).unwrap();
        f.write_all(b"hello ").unwrap();
        f.write_all(b"world").unwrap();
        f.sync().unwrap();
        assert_eq!(faults.ops(), 3, "two writes + one sync");
        assert!(!faults.crashed());
        assert_eq!(std::fs::read(&path).unwrap(), b"hello world");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    #[cfg_attr(miri, ignore)]
    fn crash_before_loses_the_write_and_poisons_the_state() {
        let dir = scratch("crash");
        let faults = FaultState::new();
        faults.arm(FaultPolicy {
            at_op: 1,
            kind: FaultKind::CrashBefore,
        });
        let path = dir.join("f");
        let mut f = DurableFile::create(&path, faults.clone()).unwrap();
        f.write_all(b"one").unwrap();
        assert!(f.write_all(b"two").is_err());
        assert!(faults.crashed());
        assert!(
            f.write_all(b"three").is_err(),
            "dead processes write nothing"
        );
        assert!(f.sync().is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"one");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    #[cfg_attr(miri, ignore)]
    fn torn_write_keeps_a_prefix() {
        let dir = scratch("torn");
        let faults = FaultState::new();
        faults.arm(FaultPolicy {
            at_op: 0,
            kind: FaultKind::Torn { keep: 4 },
        });
        let path = dir.join("f");
        let mut f = DurableFile::create(&path, faults.clone()).unwrap();
        assert!(f.write_all(b"0123456789").is_err());
        assert!(faults.crashed());
        assert_eq!(std::fs::read(&path).unwrap(), b"0123");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    #[cfg_attr(miri, ignore)]
    fn flip_bit_corrupts_silently() {
        let dir = scratch("flip");
        let faults = FaultState::new();
        faults.arm(FaultPolicy {
            at_op: 0,
            kind: FaultKind::FlipBit { bit: 1 },
        });
        let path = dir.join("f");
        let mut f = DurableFile::create(&path, faults.clone()).unwrap();
        f.write_all(&[0u8; 4])
            .expect("the write succeeds — that is the point");
        assert!(!faults.crashed());
        assert_eq!(std::fs::read(&path).unwrap(), vec![2u8, 0, 0, 0]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    #[cfg_attr(miri, ignore)]
    fn injected_error_leaves_the_process_alive() {
        let dir = scratch("err");
        let faults = FaultState::new();
        faults.arm(FaultPolicy {
            at_op: 0,
            kind: FaultKind::Error,
        });
        let path = dir.join("f");
        let mut f = DurableFile::create(&path, faults.clone()).unwrap();
        assert!(f.write_all(b"nope").is_err());
        assert!(!faults.crashed());
        f.write_all(b"retry").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"retry");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    #[cfg_attr(miri, ignore)]
    fn sync_accounts_into_the_stats_sink() {
        let dir = scratch("sync");
        let stats = Arc::new(AtomicIoStats::new());
        let mut f = DurableFile::create(&dir.join("f"), FaultState::new())
            .unwrap()
            .with_stats(stats.clone());
        f.write_all(&[7u8; 100]).unwrap();
        f.sync().unwrap();
        f.sync().unwrap();
        let snap = stats.snapshot();
        assert_eq!(snap.syncs, 2);
        assert_eq!(snap.bytes_synced, 100, "only dirty bytes count once");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    #[cfg_attr(miri, ignore)]
    fn rename_is_faultable() {
        let dir = scratch("rename");
        let faults = FaultState::new();
        let a = dir.join("a");
        let b = dir.join("b");
        std::fs::write(&a, b"x").unwrap();
        faults.arm(FaultPolicy {
            at_op: 0,
            kind: FaultKind::CrashBefore,
        });
        assert!(rename(&faults, &a, &b).is_err());
        assert!(a.exists() && !b.exists(), "crash-before: no rename");
        let faults2 = FaultState::new();
        rename(&faults2, &a, &b).unwrap();
        assert!(!a.exists() && b.exists());
        let _ = std::fs::remove_dir_all(dir);
    }
}
